//! Virtual time base.
//!
//! All latencies in the simulator are expressed as [`SimTime`], a picosecond-granular
//! fixed-point duration/instant type. Picoseconds are used instead of nanoseconds so
//! that per-instruction costs (a 2.6 GHz core retires one cycle every ~384 ps) do not
//! collapse to zero, and instead of floating point so that simulations stay exactly
//! deterministic and additive regardless of accumulation order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// A duration or instant in simulated time, stored as integer picoseconds.
///
/// `SimTime` is used both as a point on the virtual timeline (an *instant*) and as a
/// span between two points (a *duration*); the arithmetic is identical and the
/// distinction is kept by convention at the call sites.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from integer nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from fractional nanoseconds (rounded to the nearest picosecond).
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime((ns * PS_PER_NS as f64).round().max(0.0) as u64)
    }

    /// Construct from integer microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from fractional microseconds.
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_ns_f64(us * 1_000.0)
    }

    /// Construct from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (fractional).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Value in microseconds (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in seconds (fractional).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero time.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Convert a number of clock cycles at `freq_ghz` into simulated time.
    pub fn from_cycles(cycles: u64, freq_ghz: f64) -> SimTime {
        // One cycle at f GHz lasts 1000/f picoseconds.
        SimTime(((cycles as f64) * (1_000.0 / freq_ghz)).round() as u64)
    }

    /// Convert this duration into a number of clock cycles at `freq_ghz` (rounded up,
    /// so that any non-zero wait costs at least one cycle).
    pub fn to_cycles(self, freq_ghz: f64) -> u64 {
        if self.0 == 0 {
            return 0;
        }
        let ps_per_cycle = 1_000.0 / freq_ghz;
        ((self.0 as f64) / ps_per_cycle).ceil() as u64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(((self.0 as f64) * rhs).round().max(0.0) as u64)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

/// A monotonically advancing virtual clock.
///
/// Each simulated agent (a host CPU core, a NIC DMA engine, a benchmark loop) owns a
/// `SimClock` and advances it as it performs work. Interactions between agents take
/// the maximum of the clocks involved ("you cannot observe an event before it
/// happened"), which is how one-way message latency is computed without real threads.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Create a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Create a clock starting at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        SimClock { now: start }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `dur` and return the new time.
    pub fn advance(&mut self, dur: SimTime) -> SimTime {
        self.now += dur;
        self.now
    }

    /// Move the clock forward to `t` if `t` is later than now (never moves backward).
    /// Returns the amount of time the clock actually jumped (the stall / wait time).
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            let waited = t - self.now;
            self.now = t;
            waited
        } else {
            SimTime::ZERO
        }
    }

    /// Reset the clock back to zero.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(3).as_ps(), 3_000_000);
        assert!((SimTime::from_ns(1500).as_us() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_ns_f64(0.5).as_ns() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        assert_eq!((a * 3).as_ns(), 30.0);
        assert_eq!((a / 2).as_ns(), 5.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycle_conversion_at_core_clock() {
        // 2.6 GHz -> ~384.6 ps per cycle.
        let one_cycle = SimTime::from_cycles(1, 2.6);
        assert!(one_cycle.as_ps() >= 384 && one_cycle.as_ps() <= 385);
        // A microsecond is 2600 cycles at 2.6 GHz.
        let us = SimTime::from_us(1);
        assert_eq!(us.to_cycles(2.6), 2600);
        // Round trip through many cycles stays consistent.
        let t = SimTime::from_cycles(1_000_000, 2.6);
        let cycles = t.to_cycles(2.6);
        assert!((cycles as i64 - 1_000_000i64).abs() <= 1);
    }

    #[test]
    fn any_nonzero_wait_costs_a_cycle() {
        assert_eq!(SimTime::from_ps(1).to_cycles(2.6), 1);
        assert_eq!(SimTime::ZERO.to_cycles(2.6), 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(SimTime::from_ns(7));
        assert_eq!(c.now().as_ns(), 7.0);
        // advance_to earlier time is a no-op
        let waited = c.advance_to(SimTime::from_ns(3));
        assert_eq!(waited, SimTime::ZERO);
        assert_eq!(c.now().as_ns(), 7.0);
        // advance_to later time reports the stall
        let waited = c.advance_to(SimTime::from_ns(12));
        assert_eq!(waited.as_ns(), 5.0);
        assert_eq!(c.now().as_ns(), 12.0);
        c.reset();
        assert!(c.now().is_zero());
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total.as_ns(), 10.0);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimTime::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12.000ns");
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
    }
}
