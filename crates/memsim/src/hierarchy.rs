//! The full cache hierarchy: per-core L1/L2, per-cluster L3, shared LLC, DRAM.
//!
//! [`CacheHierarchy`] here is the *monolithic, single-threaded* reference model: one
//! object, `&mut self` everywhere, no interior locking. The simulated NIC's DMA
//! engine calls [`CacheHierarchy::dma_write`] when a message lands (stashing into the
//! LLC or pushing to DRAM depending on configuration), and the receiving core's
//! message handler and the jam VM charge every byte they touch through
//! [`CacheHierarchy::access`]. The hierarchy consults the per-core stride prefetcher
//! on demand misses so that long sequential footprints (large payloads) progressively
//! hide DRAM latency, which is what narrows the stash/non-stash gap in Figs. 9–10.
//!
//! # The per-core / shared split (multi-shard draining)
//!
//! The runtime's hot path no longer funnels through this type behind one global
//! lock: the fabric hands each receiver shard a [`crate::sharded::CoreBus`], which
//! owns that core's **private L1/L2 and prefetcher outright** (zero locks on a
//! private hit) and escalates misses to the [`crate::sharded::SharedHierarchy`]'s
//! lock-striped L3/LLC/DRAM levels. The two models charge identical costs for
//! identical access streams — `sharded::tests` pins that equivalence — so the
//! monolithic form stays as the easy-to-reason-about reference and as the
//! convenient `&mut`-style bus for unit tests.
//!
//! **Invalidation contract:** inbound DMA makes the LLC (stash path) or DRAM
//! (non-stash path) copy authoritative, so any private L1/L2 copy of a delivered
//! line is stale. The monolithic model invalidates private levels inline in
//! [`CacheHierarchy::dma_write`]; the sharded model posts the same line set to each
//! core's invalidation inbox, drained at the start of that core's next access —
//! before the core can observe a stale line.

use std::collections::HashSet;

use crate::cache::{AccessKind, CacheStats, SetAssocCache};
use crate::clock::SimTime;
use crate::config::TestbedConfig;
use crate::latency::DramModel;
use crate::prefetch::StridePrefetcher;
use crate::stress::MemoryStressor;

/// Anything that can charge memory accesses. The jam VM and the message runtime are
/// written against this trait so they can run over the real hierarchy, or over
/// [`FlatMemory`] (a fixed-cost stub) in unit tests that do not care about timing.
pub trait MemoryBus {
    /// Charge an access of `len` bytes at `addr` performed by `core` and return its cost.
    fn access(&mut self, core: usize, addr: u64, len: usize, kind: AccessKind) -> SimTime;
}

/// A trivial [`MemoryBus`] with a constant per-access cost. Useful in unit tests of
/// components that need *a* bus but whose assertions are not about timing.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    /// Cost charged per access regardless of size.
    pub per_access: SimTime,
    /// Number of accesses observed.
    pub accesses: u64,
}

impl FlatMemory {
    /// A flat memory with zero cost per access.
    pub fn free() -> Self {
        FlatMemory {
            per_access: SimTime::ZERO,
            accesses: 0,
        }
    }
}

impl MemoryBus for FlatMemory {
    fn access(&mut self, _core: usize, _addr: u64, _len: usize, _kind: AccessKind) -> SimTime {
        self.accesses += 1;
        self.per_access
    }
}

/// Aggregated statistics across the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Demand accesses that hit in a private L1.
    pub l1_hits: u64,
    /// Demand accesses that hit in a private L2.
    pub l2_hits: u64,
    /// Demand accesses that hit in a cluster L3.
    pub l3_hits: u64,
    /// Demand accesses that hit in the shared LLC.
    pub llc_hits: u64,
    /// Demand accesses that had to go to DRAM.
    pub dram_accesses: u64,
    /// Lines installed through the stash port by the DMA engine.
    pub stashed_lines: u64,
    /// Lines written by DMA directly to DRAM (stashing disabled path).
    pub dma_dram_lines: u64,
    /// Prefetches issued.
    pub prefetches_issued: u64,
    /// Demand accesses that were satisfied by a previously prefetched line.
    pub prefetch_hits: u64,
    /// Dirty write-backs charged.
    pub writebacks: u64,
}

impl HierarchyStats {
    /// Fold one core's private-cache counters into this (shared-level) view —
    /// how the sharded hierarchy's per-core [`crate::sharded::CoreCacheStats`]
    /// merge into the same global picture the monolithic model reports.
    pub fn absorb_core(&mut self, core: &crate::sharded::CoreCacheStats) {
        self.l1_hits += core.l1_hits;
        self.l2_hits += core.l2_hits;
        self.writebacks += core.writebacks;
        self.prefetches_issued += core.prefetches_issued;
        self.prefetch_hits += core.prefetch_hits;
    }
}

/// The simulated cache hierarchy for one host.
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: TestbedConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: Vec<SetAssocCache>,
    llc: SetAssocCache,
    prefetchers: Vec<StridePrefetcher>,
    dram: DramModel,
    stressor: Option<MemoryStressor>,
    /// LLC-resident lines that were brought in by a prefetch and have not yet been
    /// demanded; used for prefetch-usefulness accounting.
    prefetched: HashSet<u64>,
    stats: HierarchyStats,
    line_size: usize,
}

impl CacheHierarchy {
    /// Build an empty (cold) hierarchy for the given machine description.
    pub fn new(cfg: TestbedConfig) -> Self {
        let l1 = (0..cfg.caches.num_cores)
            .map(|_| SetAssocCache::new(cfg.caches.l1))
            .collect();
        let l2 = (0..cfg.caches.num_cores)
            .map(|_| SetAssocCache::new(cfg.caches.l2))
            .collect();
        let l3 = (0..cfg.num_clusters())
            .map(|_| SetAssocCache::new(cfg.caches.l3))
            .collect();
        let llc = SetAssocCache::new(cfg.caches.llc);
        let prefetchers = (0..cfg.caches.num_cores)
            .map(|_| StridePrefetcher::new(cfg.prefetch))
            .collect();
        let dram = DramModel::new(cfg.latency.dram, cfg.dram);
        let line_size = cfg.caches.llc.line_size;
        CacheHierarchy {
            cfg,
            l1,
            l2,
            l3,
            llc,
            prefetchers,
            dram,
            stressor: None,
            prefetched: HashSet::new(),
            stats: HierarchyStats::default(),
            line_size,
        }
    }

    /// The machine description this hierarchy models.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// Whether inbound DMA is stashed into the LLC.
    pub fn stashing_enabled(&self) -> bool {
        self.cfg.llc_stashing
    }

    /// Toggle LLC stashing (the paper's firmware knob).
    pub fn set_stashing(&mut self, enabled: bool) {
        self.cfg.llc_stashing = enabled;
    }

    /// Toggle the hardware prefetcher (the paper's kernel knob).
    pub fn set_prefetching(&mut self, enabled: bool) {
        self.cfg.prefetch.enabled = enabled;
        for p in &mut self.prefetchers {
            *p = StridePrefetcher::new(self.cfg.prefetch);
        }
    }

    /// Attach (or detach, with `None`) a memory stressor. The stressor both consumes
    /// DRAM bandwidth and injects heavy-tailed queueing delays.
    pub fn set_stressor(&mut self, stressor: Option<MemoryStressor>) {
        let util = stressor
            .as_ref()
            .map(|s| s.bandwidth_share())
            .unwrap_or(0.0);
        self.dram.set_background_utilization(util);
        self.stressor = stressor;
    }

    /// Whether a stressor is currently attached.
    pub fn stressed(&self) -> bool {
        self.stressor.is_some()
    }

    /// Per-message software-visible jitter from the loaded system (scheduler noise);
    /// zero when no stressor is attached.
    pub fn scheduler_jitter(&mut self) -> SimTime {
        match &mut self.stressor {
            Some(s) => s.scheduler_jitter(),
            None => SimTime::ZERO,
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Reset statistics (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        for c in &mut self.l3 {
            c.reset_stats();
        }
        self.llc.reset_stats();
    }

    /// Drop all cached lines (cold caches) as well as statistics.
    pub fn clear(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        for c in &mut self.l3 {
            c.clear();
        }
        self.llc.clear();
        for p in &mut self.prefetchers {
            p.reset();
        }
        self.prefetched.clear();
        self.stats = HierarchyStats::default();
    }

    /// LLC statistics (used by tests to check stash behaviour).
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    #[inline]
    fn lines_covering(&self, addr: u64, len: usize) -> (u64, u64) {
        let first = addr / self.line_size as u64;
        let last = (addr + len.max(1) as u64 - 1) / self.line_size as u64;
        (first, last)
    }

    /// Charge a single-line demand access from `core`.
    fn access_line(&mut self, core: usize, line: u64, kind: AccessKind) -> SimTime {
        let cluster = self.cfg.cluster_of(core);
        let byte_addr = line * self.line_size as u64;
        let lat = self.cfg.latency;

        // L1
        let l1 = &mut self.l1[core];
        let out1 = l1.access_line(line, kind);
        if out1.hit {
            self.stats.l1_hits += 1;
            return lat.l1_hit;
        }
        let mut cost = lat.l1_hit; // the L1 lookup that missed still costs its access time
        if out1.dirty_victim.is_some() {
            cost += lat.writeback;
            self.stats.writebacks += 1;
        }

        // L2
        let l2 = &mut self.l2[core];
        let out = l2.access_line(line, kind);
        if out.hit {
            self.stats.l2_hits += 1;
            return cost + lat.l2_hit;
        }
        cost += lat.l2_hit;
        if out.dirty_victim.is_some() {
            cost += lat.writeback;
            self.stats.writebacks += 1;
        }

        // L3
        let l3 = &mut self.l3[cluster];
        let out3 = l3.access_line(line, kind);
        if out3.hit {
            self.stats.l3_hits += 1;
            return cost + lat.l3_hit;
        }
        cost += lat.l3_hit;
        if out3.dirty_victim.is_some() {
            cost += lat.writeback;
            self.stats.writebacks += 1;
        }

        // LLC
        let outl = self.llc.access_line(line, kind);
        if outl.hit {
            self.stats.llc_hits += 1;
            if self.prefetched.remove(&line) {
                self.stats.prefetch_hits += 1;
                self.prefetchers[core].record_useful();
                // Keep the stream trained: real prefetchers observe the demand
                // stream, so hitting a prefetched line extends the lookahead instead
                // of letting the stream go cold after `degree` lines.
                let issued = self.prefetchers[core].observe_miss(line);
                if !issued.is_empty() {
                    self.stats.prefetches_issued += issued.len() as u64;
                    for pline in issued {
                        if self.llc.stash_line(pline).is_some() {
                            self.stats.writebacks += 1;
                        }
                        self.prefetched.insert(pline);
                    }
                }
            }
            return cost + lat.llc_hit;
        }
        cost += lat.llc_hit;
        if let Some(victim) = outl.dirty_victim {
            cost += self.dram.writeback();
            self.stats.writebacks += 1;
            self.prefetched.remove(&victim);
        }

        // DRAM + prefetcher training.
        self.stats.dram_accesses += 1;
        cost += self.dram.line_access(self.stressor.as_mut());
        let issued = self.prefetchers[core].observe_miss(line);
        if !issued.is_empty() {
            self.stats.prefetches_issued += issued.len() as u64;
            for pline in issued {
                // Prefetches land in the LLC in the background; the demand path does
                // not pay for them, but evicted dirty victims still generate traffic.
                if let Some(_victim) = self.llc.stash_line(pline) {
                    self.stats.writebacks += 1;
                }
                self.prefetched.insert(pline);
            }
        }
        let _ = byte_addr;
        cost
    }

    /// Write `len` bytes arriving from the NIC DMA engine at `addr`.
    ///
    /// With stashing enabled the lines are installed directly into the LLC (the
    /// paper's ConnectX-6 + PCIe root complex path); otherwise they are written to
    /// DRAM and any stale cached copies are invalidated, so the receiver's first
    /// touch will miss all the way to memory. The returned time is the DMA engine's
    /// own cost, which overlaps with (and is charged to) the NIC timeline, not the
    /// receiving core.
    pub fn dma_write(&mut self, addr: u64, len: usize) -> SimTime {
        let (first, last) = self.lines_covering(addr, len);
        let mut cost = SimTime::ZERO;
        for line in first..=last {
            if self.cfg.llc_stashing {
                if self.llc.stash_line(line).is_some() {
                    cost += self.dram.writeback();
                    self.stats.writebacks += 1;
                }
                self.stats.stashed_lines += 1;
                cost += self.cfg.latency.stash_install;
                // The copy in LLC is now the authoritative one; private caches on the
                // receiving side may hold stale data for reused mailbox buffers.
                for l1 in &mut self.l1 {
                    l1.invalidate(line * self.line_size as u64);
                }
                for l2 in &mut self.l2 {
                    l2.invalidate(line * self.line_size as u64);
                }
                for l3 in &mut self.l3 {
                    l3.invalidate(line * self.line_size as u64);
                }
            } else {
                // DMA to DRAM: invalidate everywhere so demand accesses miss to DRAM.
                let byte = line * self.line_size as u64;
                for l1 in &mut self.l1 {
                    l1.invalidate(byte);
                }
                for l2 in &mut self.l2 {
                    l2.invalidate(byte);
                }
                for l3 in &mut self.l3 {
                    l3.invalidate(byte);
                }
                self.llc.invalidate(byte);
                self.prefetched.remove(&line);
                self.stats.dma_dram_lines += 1;
                cost += self.dram.writeback();
            }
        }
        cost
    }

    /// Warm the given range into the LLC (e.g. a "local function" library that has
    /// been executed before and is resident). Charged to nobody.
    pub fn warm_llc(&mut self, addr: u64, len: usize) {
        let (first, last) = self.lines_covering(addr, len);
        for line in first..=last {
            self.llc.stash_line(line);
        }
    }

    /// Warm the given range into a specific core's private L1/L2 (and the LLC
    /// beneath them), modelling code/data that the receiver thread keeps hot.
    pub fn warm_l2(&mut self, core: usize, addr: u64, len: usize) {
        let (first, last) = self.lines_covering(addr, len);
        for line in first..=last {
            self.llc.stash_line(line);
            self.l2[core].access_line(line, AccessKind::Read);
            self.l1[core].access_line(line, AccessKind::Read);
        }
    }

    /// Check whether the line containing `addr` currently resides in the LLC.
    pub fn llc_contains(&self, addr: u64) -> bool {
        self.llc.contains(addr)
    }
}

impl MemoryBus for CacheHierarchy {
    fn access(&mut self, core: usize, addr: u64, len: usize, kind: AccessKind) -> SimTime {
        assert!(core < self.cfg.caches.num_cores, "core {core} out of range");
        let (first, last) = self.lines_covering(addr, len);
        let mut total = SimTime::ZERO;
        for line in first..=last {
            total += self.access_line(core, line, kind);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestbedConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(TestbedConfig::tiny_for_tests())
    }

    #[test]
    fn repeated_access_gets_cheaper() {
        let mut h = hierarchy();
        let cold = h.access(0, 0x1000, 64, AccessKind::Read);
        let warm = h.access(0, 0x1000, 64, AccessKind::Read);
        assert!(cold > warm, "cold {cold} should exceed warm {warm}");
        assert_eq!(h.stats().l1_hits, 1, "re-touch hits the private L1");
        assert_eq!(h.stats().dram_accesses, 1);
    }

    #[test]
    fn multi_line_access_charges_each_line() {
        let mut h = hierarchy();
        let one = h.access(0, 0, 64, AccessKind::Read);
        h.clear();
        let four = h.access(0, 0, 256, AccessKind::Read);
        assert!(four > one);
        assert_eq!(h.stats().dram_accesses, 4);
    }

    #[test]
    fn stashed_dma_turns_first_touch_into_llc_hit() {
        let mut h = hierarchy();
        h.set_stashing(true);
        h.dma_write(0x4000, 128);
        let t = h.access(1, 0x4000, 128, AccessKind::Read);
        assert_eq!(h.stats().llc_hits, 2);
        assert_eq!(h.stats().dram_accesses, 0);
        // Cost should be roughly 2 * (l2 miss + l3 miss + llc hit), far below DRAM.
        assert!(t < SimTime::from_ns(2 * 100));
    }

    #[test]
    fn unstashed_dma_forces_dram_access() {
        let mut h = hierarchy();
        h.set_stashing(false);
        // Even if the receiver had the mailbox cached from a previous message...
        h.access(1, 0x4000, 128, AccessKind::Read);
        h.reset_stats();
        // ...a non-stashed arrival invalidates it.
        h.dma_write(0x4000, 128);
        h.access(1, 0x4000, 128, AccessKind::Read);
        assert_eq!(h.stats().dram_accesses, 2);
        assert_eq!(h.stats().llc_hits, 0);
    }

    #[test]
    fn stash_vs_nonstash_latency_gap() {
        let cfg = TestbedConfig::tiny_for_tests();
        let mut stash = CacheHierarchy::new(cfg.clone());
        stash.set_stashing(true);
        let mut nostash = CacheHierarchy::new(cfg);
        nostash.set_stashing(false);
        stash.dma_write(0, 1024);
        nostash.dma_write(0, 1024);
        let t_stash = stash.access(0, 0, 1024, AccessKind::Read);
        let t_nostash = nostash.access(0, 0, 1024, AccessKind::Read);
        assert!(
            t_nostash > t_stash,
            "non-stashed first touch ({t_nostash}) must be slower than stashed ({t_stash})"
        );
    }

    #[test]
    fn prefetcher_reduces_dram_trips_on_long_streams() {
        let mut cfg = TestbedConfig::tiny_for_tests();
        cfg.prefetch.enabled = true;
        cfg.llc_stashing = false;
        let mut h = CacheHierarchy::new(cfg);
        // Stream through 64 consecutive lines.
        for i in 0..64u64 {
            h.access(0, i * 64, 64, AccessKind::Read);
        }
        let with_pf = h.stats().dram_accesses;
        assert!(h.stats().prefetches_issued > 0);
        assert!(
            h.stats().prefetch_hits > 0,
            "some demand accesses should hit prefetched lines"
        );

        let mut cfg2 = TestbedConfig::tiny_for_tests();
        cfg2.prefetch.enabled = false;
        cfg2.llc_stashing = false;
        let mut h2 = CacheHierarchy::new(cfg2);
        for i in 0..64u64 {
            h2.access(0, i * 64, 64, AccessKind::Read);
        }
        assert!(
            with_pf < h2.stats().dram_accesses,
            "prefetching should cut DRAM trips ({} vs {})",
            with_pf,
            h2.stats().dram_accesses
        );
    }

    #[test]
    fn warm_llc_makes_local_library_cheap() {
        let mut h = hierarchy();
        h.warm_llc(0x9000, 512);
        h.reset_stats();
        h.access(2, 0x9000, 512, AccessKind::Fetch);
        assert_eq!(h.stats().dram_accesses, 0);
    }

    #[test]
    fn warm_l2_is_cheaper_than_warm_llc() {
        let mut h = hierarchy();
        h.warm_l2(0, 0x9000, 64);
        let t_l2 = h.access(0, 0x9000, 64, AccessKind::Read);
        let mut h2 = hierarchy();
        h2.warm_llc(0x9000, 64);
        let t_llc = h2.access(0, 0x9000, 64, AccessKind::Read);
        assert!(t_l2 < t_llc);
    }

    #[test]
    fn stressor_inflates_dram_latency() {
        let mut cfg = TestbedConfig::tiny_for_tests();
        cfg.llc_stashing = false;
        let mut h = CacheHierarchy::new(cfg);
        let mut idle_total = SimTime::ZERO;
        for i in 0..200u64 {
            idle_total += h.access(0, i * 64, 64, AccessKind::Read);
        }
        h.clear();
        h.set_stressor(Some(MemoryStressor::fully_loaded(11)));
        let mut loaded_total = SimTime::ZERO;
        for i in 0..200u64 {
            loaded_total += h.access(0, i * 64, 64, AccessKind::Read);
        }
        assert!(loaded_total > idle_total);
        assert!(h.stressed());
        h.set_stressor(None);
        assert!(!h.stressed());
    }

    #[test]
    fn flat_memory_counts_accesses() {
        let mut f = FlatMemory::free();
        f.access(0, 0, 64, AccessKind::Read);
        f.access(0, 64, 64, AccessKind::Write);
        assert_eq!(f.accesses, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_bounds_are_checked() {
        let mut h = hierarchy();
        h.access(99, 0, 64, AccessKind::Read);
    }
}
