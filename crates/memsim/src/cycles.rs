//! CPU-cycle accounting and the Polling-vs-WFE wait model.
//!
//! The paper's §VII-D measures the CPU cycle counters over a full benchmark run
//! (10,000 warm-up + 1,000,000 measured iterations) and shows that inserting the Arm
//! `WFE` instruction into the mailbox wait loop cuts the cycles spent spin-waiting by
//! 2.5×–3.8× while leaving latency essentially unchanged (≤ 1.5 % penalty at the
//! smallest payload).
//!
//! The model here is deliberately simple and matches how the hardware behaves:
//!
//! * **Polling** — the core executes the spin loop for the entire wait duration, so
//!   it retires `wait_time × core_frequency` cycles.
//! * **WFE** — the core executes a handful of loop iterations, arms the event monitor
//!   (`LDXR`/`WFE`), and sleeps. Waking costs a small fixed latency (the event
//!   signal propagating through the interconnect plus pipeline restart) and a small
//!   fixed number of cycles. During the sleep the core retires (almost) nothing.

use crate::clock::SimTime;

/// How the receiver waits for the mailbox signal word to change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitMode {
    /// Busy-wait: spin on an acquire load of the signal word.
    Polling,
    /// Spin briefly, then use the Arm Wait-For-Event mechanism (`SEVL`/`WFE` +
    /// exclusive monitor on the signal cache line).
    Wfe,
}

impl WaitMode {
    /// All wait modes, in the order the paper discusses them.
    pub const ALL: [WaitMode; 2] = [WaitMode::Polling, WaitMode::Wfe];

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            WaitMode::Polling => "Polling",
            WaitMode::Wfe => "WFE",
        }
    }
}

/// Result of waiting for an event: how long it took (added to the latency critical
/// path) and how many core cycles were burned doing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitOutcome {
    /// Wall-clock (virtual) time from "start waiting" to "handler can run".
    pub elapsed: SimTime,
    /// Core cycles retired by the waiting core during that time.
    pub cycles: u64,
}

/// Parameters of the wait model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitModel {
    /// Core frequency in GHz (cycles are charged at this rate while spinning).
    pub core_freq_ghz: f64,
    /// Polling loop granularity: the arrival is observed at the next poll boundary.
    /// A tight acquire-load loop on a cached line turns around in a few cycles.
    pub poll_interval: SimTime,
    /// Extra wake-up latency paid by WFE (event signal + pipeline restart).
    pub wfe_wake_latency: SimTime,
    /// Cycles spent entering the WFE state (arming the monitor) and leaving it.
    pub wfe_overhead_cycles: u64,
    /// Cycles retired per wake-up while in WFE (spurious wake-up filtering, the
    /// re-check of the signal word).
    pub wfe_recheck_cycles: u64,
}

impl WaitModel {
    /// Wait model for the paper's 2.6 GHz cores.
    pub fn cluster2021() -> Self {
        WaitModel {
            core_freq_ghz: 2.6,
            poll_interval: SimTime::from_ns(4),
            wfe_wake_latency: SimTime::from_ns(14),
            wfe_overhead_cycles: 40,
            wfe_recheck_cycles: 24,
        }
    }

    /// Compute the outcome of waiting `wait` for a signal, under `mode`.
    pub fn wait(&self, mode: WaitMode, wait: SimTime) -> WaitOutcome {
        match mode {
            WaitMode::Polling => {
                // Round the observation up to the next poll boundary.
                let interval = self.poll_interval.as_ps().max(1);
                let polls = wait.as_ps().div_ceil(interval);
                let elapsed = SimTime::from_ps(polls.max(1) * interval);
                let cycles = elapsed.to_cycles(self.core_freq_ghz);
                WaitOutcome { elapsed, cycles }
            }
            WaitMode::Wfe => {
                // The core spins for up to one poll interval before arming WFE (this
                // catches already-arrived messages with zero extra latency), then
                // sleeps until the event fires.
                if wait <= self.poll_interval {
                    let elapsed = self.poll_interval;
                    let cycles = elapsed.to_cycles(self.core_freq_ghz);
                    return WaitOutcome { elapsed, cycles };
                }
                let elapsed = wait + self.wfe_wake_latency;
                let cycles = self.poll_interval.to_cycles(self.core_freq_ghz)
                    + self.wfe_overhead_cycles
                    + self.wfe_recheck_cycles;
                WaitOutcome { elapsed, cycles }
            }
        }
    }
}

impl Default for WaitModel {
    fn default() -> Self {
        Self::cluster2021()
    }
}

/// A per-core cycle counter, mirroring the PMU counter the paper reads over the full
/// benchmark run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter {
    total: u64,
    /// Cycles attributable to waiting for message arrival (the component WFE shrinks).
    waiting: u64,
    /// Cycles attributable to executing handlers / benchmark work.
    working: u64,
}

impl CycleCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add cycles spent waiting for a message.
    pub fn add_wait(&mut self, cycles: u64) {
        self.waiting += cycles;
        self.total += cycles;
    }

    /// Add cycles spent doing useful work (packing, executing, replying).
    pub fn add_work(&mut self, cycles: u64) {
        self.working += cycles;
        self.total += cycles;
    }

    /// Add cycles corresponding to a span of busy time at `freq_ghz`.
    pub fn add_work_time(&mut self, t: SimTime, freq_ghz: f64) {
        self.add_work(t.to_cycles(freq_ghz));
    }

    /// Total cycles retired.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycles spent waiting.
    pub fn waiting(&self) -> u64 {
        self.waiting
    }

    /// Cycles spent working.
    pub fn working(&self) -> u64 {
        self.working
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &CycleCounter) {
        self.total += other.total;
        self.waiting += other.waiting;
        self.working += other.working;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polling_burns_cycles_proportional_to_wait() {
        let m = WaitModel::cluster2021();
        let short = m.wait(WaitMode::Polling, SimTime::from_ns(100));
        let long = m.wait(WaitMode::Polling, SimTime::from_us(10));
        assert!(long.cycles > short.cycles * 50);
        // 10us at 2.6GHz = 26000 cycles
        assert!(long.cycles >= 26_000 && long.cycles <= 27_000);
    }

    #[test]
    fn wfe_burns_roughly_constant_cycles() {
        let m = WaitModel::cluster2021();
        let short = m.wait(WaitMode::Wfe, SimTime::from_ns(500));
        let long = m.wait(WaitMode::Wfe, SimTime::from_us(100));
        assert_eq!(
            short.cycles, long.cycles,
            "WFE cycle cost should not grow with wait time"
        );
        assert!(long.cycles < 200);
    }

    #[test]
    fn wfe_latency_penalty_is_small() {
        let m = WaitModel::cluster2021();
        let wait = SimTime::from_us(1);
        let poll = m.wait(WaitMode::Polling, wait);
        let wfe = m.wait(WaitMode::Wfe, wait);
        assert!(wfe.elapsed > poll.elapsed, "WFE pays a wake-up penalty");
        let penalty = (wfe.elapsed.as_ns() - poll.elapsed.as_ns()) / poll.elapsed.as_ns();
        assert!(penalty < 0.02, "penalty should be under 2%, got {penalty}");
    }

    #[test]
    fn wfe_cycle_savings_match_paper_magnitude() {
        // For a ~1.5us one-way latency ping-pong, most of the receiver's time is
        // waiting; the paper reports 2.5x-3.8x total-cycle reduction. Check the wait
        // component alone gives a large factor.
        let m = WaitModel::cluster2021();
        let wait = SimTime::from_us_f64(1.5);
        let poll = m.wait(WaitMode::Polling, wait);
        let wfe = m.wait(WaitMode::Wfe, wait);
        let factor = poll.cycles as f64 / wfe.cycles as f64;
        assert!(
            factor > 10.0,
            "wait-cycle reduction should be large, got {factor}"
        );
    }

    #[test]
    fn immediate_arrival_is_cheap_for_both() {
        let m = WaitModel::cluster2021();
        let p = m.wait(WaitMode::Polling, SimTime::ZERO);
        let w = m.wait(WaitMode::Wfe, SimTime::ZERO);
        assert!(p.elapsed <= m.poll_interval);
        assert!(w.elapsed <= m.poll_interval);
        assert!(w.cycles <= p.cycles + m.wfe_overhead_cycles);
    }

    #[test]
    fn cycle_counter_partitions() {
        let mut c = CycleCounter::new();
        c.add_wait(100);
        c.add_work(40);
        c.add_work_time(SimTime::from_ns(10), 2.0); // 20 cycles
        assert_eq!(c.waiting(), 100);
        assert_eq!(c.working(), 60);
        assert_eq!(c.total(), 160);
        let mut d = CycleCounter::new();
        d.add_wait(1);
        d.merge(&c);
        assert_eq!(d.total(), 161);
    }

    #[test]
    fn wait_mode_labels() {
        assert_eq!(WaitMode::Polling.label(), "Polling");
        assert_eq!(WaitMode::Wfe.label(), "WFE");
        assert_eq!(WaitMode::ALL.len(), 2);
    }
}
