//! The interpreter.
//!
//! [`Vm::execute`] runs verified bytecode against a [`JamSpace`] (the exclusive
//! [`crate::memory::AddressSpace`] or a per-shard
//! [`crate::memory::ShardSpace`] view), an
//! [`ExternTable`] and a [`GotImage`], charging every instruction fetch and every
//! data access to the supplied [`MemoryBus`]. The returned [`ExecStats`] carry both
//! the functional result (the value left in `r0`) and the virtual time the execution
//! cost — which depends on where the code and data landed (LLC if the message was
//! stashed, DRAM otherwise), reproducing the effect the paper measures.

use twochains_memsim::{AccessKind, MemoryBus, SimTime};

use crate::encode::encoded_size;
use crate::externs::{ExternCtx, ExternRef, ExternTable, GotImage};
use crate::isa::{hash64, AluOp, Cond, Instr, NUM_REGS};
use crate::memory::JamSpace;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the program (should be prevented by the verifier).
    PcOutOfBounds {
        /// Offending pc.
        pc: usize,
    },
    /// A memory access faulted.
    Fault(String),
    /// A `CallExtern` went through an unresolved GOT slot.
    UnresolvedGot {
        /// The slot index.
        slot: u16,
    },
    /// A GOT slot resolved to a data address but was called as a function.
    NotCallable {
        /// The slot index.
        slot: u16,
    },
    /// The extern function itself failed.
    ExternFailed(String),
    /// The instruction budget was exhausted (runaway loop protection).
    FuelExhausted,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfBounds { pc } => write!(f, "pc {pc} out of bounds"),
            ExecError::Fault(m) => write!(f, "memory fault: {m}"),
            ExecError::UnresolvedGot { slot } => {
                write!(f, "call through unresolved GOT slot {slot}")
            }
            ExecError::NotCallable { slot } => write!(f, "GOT slot {slot} is data, not callable"),
            ExecError::ExternFailed(m) => write!(f, "extern function failed: {m}"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-execution configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Core the receiver thread runs on (for cache-hierarchy charging).
    pub core: usize,
    /// Simulated base address of the code (so instruction fetches hit the same cache
    /// lines the NIC stashed). Zero disables fetch charging.
    pub code_base: u64,
    /// Maximum number of instructions to retire before aborting.
    pub fuel: u64,
    /// Core frequency in GHz (for converting per-instruction cycles to time).
    pub freq_ghz: f64,
    /// Average retired instructions per cycle for straight-line bytecode (the paper's
    /// cores are "modern superscalar"; the interpreter charges 1/ipc cycles per
    /// instruction on top of memory time).
    pub ipc: f64,
    /// Fixed overhead per extern call (call/return through the indirection).
    pub extern_call_overhead: SimTime,
    /// Initial values for registers `r0..r2` — the jam entry convention (ARGS base,
    /// USR base, USR length). Seeding registers here replaces the old per-message
    /// prologue the runtime used to prepend (three `LoadImm`s plus a branch-target
    /// rewrite of the whole program), which forced a fresh `Vec<Instr>` allocation on
    /// every dispatch; with `entry_regs` the cached `Arc<[Instr]>` program is executed
    /// as-is.
    pub entry_regs: [u64; 3],
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            core: 0,
            code_base: 0,
            fuel: 10_000_000,
            freq_ghz: 2.6,
            ipc: 2.0,
            extern_call_overhead: SimTime::from_ns(6),
            entry_regs: [0; 3],
        }
    }
}

/// Result of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Value left in `r0` when the jam returned.
    pub result: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Number of extern calls made.
    pub extern_calls: u64,
    /// Fused superinstructions executed (always 0 on the interpreter path; the
    /// resolved executor counts each fused pair it retires).
    pub superinstructions: u64,
    /// Time spent in instruction issue/ALU work.
    pub compute_time: SimTime,
    /// Time spent in data memory accesses (loads, stores, copies, extern memory work).
    pub memory_time: SimTime,
    /// Time spent fetching code (first touch comes from wherever the message landed).
    pub fetch_time: SimTime,
}

impl ExecStats {
    /// Total execution time.
    pub fn total_time(&self) -> SimTime {
        self.compute_time + self.memory_time + self.fetch_time
    }
}

/// The jam interpreter.
#[derive(Debug, Default)]
pub struct Vm;

impl Vm {
    /// Execute `program` to completion.
    ///
    /// The program should have passed [`crate::verify::verify`]; the interpreter
    /// still guards against out-of-bounds pc and faults so a malicious blob cannot
    /// break the host, but verification errors become runtime errors here.
    pub fn execute(
        program: &[Instr],
        got: &GotImage,
        externs: &ExternTable,
        space: &mut dyn JamSpace,
        bus: &mut dyn MemoryBus,
        cfg: &VmConfig,
    ) -> Result<ExecStats, ExecError> {
        let mut regs = [0u64; NUM_REGS];
        regs[..cfg.entry_regs.len()].copy_from_slice(&cfg.entry_regs);
        let mut pc = 0usize;
        let mut stats = ExecStats {
            result: 0,
            instructions: 0,
            extern_calls: 0,
            superinstructions: 0,
            compute_time: SimTime::ZERO,
            memory_time: SimTime::ZERO,
            fetch_time: SimTime::ZERO,
        };
        // Byte offset of each instruction within the encoded .text, for fetch charging.
        let mut offsets = Vec::with_capacity(program.len());
        let mut acc = 0usize;
        for i in program {
            offsets.push(acc);
            acc += encoded_size(i);
        }
        let cycle = SimTime::from_cycles(1, cfg.freq_ghz);
        let issue_cost = cycle * (1.0 / cfg.ipc);

        loop {
            if stats.instructions >= cfg.fuel {
                return Err(ExecError::FuelExhausted);
            }
            let instr = match program.get(pc) {
                Some(i) => *i,
                None => return Err(ExecError::PcOutOfBounds { pc }),
            };
            stats.instructions += 1;
            stats.compute_time += issue_cost;
            if cfg.code_base != 0 {
                stats.fetch_time += bus.access(
                    cfg.core,
                    cfg.code_base + offsets[pc] as u64,
                    encoded_size(&instr),
                    AccessKind::Fetch,
                );
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::LoadImm { dst, imm } => regs[dst.0 as usize] = imm,
                Instr::Mov { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
                Instr::Alu { op, dst, a, b } => {
                    let (x, y) = (regs[a.0 as usize], regs[b.0 as usize]);
                    regs[dst.0 as usize] = alu(op, x, y);
                }
                Instr::AluImm { op, dst, src, imm } => {
                    regs[dst.0 as usize] = alu(op, regs[src.0 as usize], imm);
                }
                Instr::Load {
                    width,
                    dst,
                    addr,
                    offset,
                } => {
                    let a = regs[addr.0 as usize].wrapping_add(offset as u64);
                    stats.memory_time += bus.access(cfg.core, a, width.bytes(), AccessKind::Read);
                    regs[dst.0 as usize] = space
                        .read_scalar(a, width.bytes())
                        .map_err(|e| ExecError::Fault(e.to_string()))?;
                }
                Instr::Store {
                    width,
                    src,
                    addr,
                    offset,
                } => {
                    let a = regs[addr.0 as usize].wrapping_add(offset as u64);
                    stats.memory_time += bus.access(cfg.core, a, width.bytes(), AccessKind::Write);
                    space
                        .write_scalar(a, regs[src.0 as usize], width.bytes())
                        .map_err(|e| ExecError::Fault(e.to_string()))?;
                }
                Instr::Memcpy { dst, src, len } => {
                    let (d, s, n) = (
                        regs[dst.0 as usize],
                        regs[src.0 as usize],
                        regs[len.0 as usize] as usize,
                    );
                    if n > 0 {
                        stats.memory_time += bus.access(cfg.core, s, n, AccessKind::Read);
                        stats.memory_time += bus.access(cfg.core, d, n, AccessKind::Write);
                        space
                            .copy(d, s, n)
                            .map_err(|e| ExecError::Fault(e.to_string()))?;
                    }
                }
                Instr::Jump { target } => next_pc = target as usize,
                Instr::Branch { cond, a, b, target } => {
                    let (x, y) = (regs[a.0 as usize], regs[b.0 as usize]);
                    let taken = match cond {
                        Cond::Zero => x == 0,
                        Cond::NotZero => x != 0,
                        Cond::Less => x < y,
                        Cond::GreaterEq => x >= y,
                    };
                    if taken {
                        next_pc = target as usize;
                    }
                }
                Instr::CallExtern { slot, nargs } => {
                    stats.extern_calls += 1;
                    stats.compute_time += cfg.extern_call_overhead;
                    let idx = match got.get(slot as usize) {
                        ExternRef::Resolved(i) => i,
                        ExternRef::Unresolved => return Err(ExecError::UnresolvedGot { slot }),
                        ExternRef::Data(_) => return Err(ExecError::NotCallable { slot }),
                    };
                    let args: Vec<u64> = regs[..nargs as usize].to_vec();
                    let mut ctx = ExternCtx {
                        space,
                        bus,
                        core: cfg.core,
                        elapsed: SimTime::ZERO,
                    };
                    let r = externs
                        .call(idx, &mut ctx, &args)
                        .map_err(ExecError::ExternFailed)?;
                    stats.memory_time += ctx.elapsed;
                    regs[0] = r;
                }
                Instr::Hash { dst, src } => regs[dst.0 as usize] = hash64(regs[src.0 as usize]),
                Instr::Nop => {}
                Instr::Ret => {
                    stats.result = regs[0];
                    return Ok(stats);
                }
            }
            pc = next_pc;
        }
    }
}

pub(crate) fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::{Reg, Width};
    use crate::memory::{AddressSpace, Segment, SegmentKind};
    use std::sync::Arc;
    use twochains_memsim::hierarchy::FlatMemory;

    fn run(
        program: &[Instr],
        got: &GotImage,
        externs: &ExternTable,
        space: &mut AddressSpace,
    ) -> Result<ExecStats, ExecError> {
        let mut bus = FlatMemory::free();
        Vm::execute(program, got, externs, space, &mut bus, &VmConfig::default())
    }

    #[test]
    fn arithmetic_and_return() {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 6)
            .load_imm(Reg(1), 7)
            .mul(Reg(0), Reg(0), Reg(1))
            .ret();
        let prog = a.finish().unwrap();
        let stats = run(
            &prog,
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
        )
        .unwrap();
        assert_eq!(stats.result, 42);
        assert_eq!(stats.instructions, 4);
        assert!(stats.total_time() > SimTime::ZERO);
    }

    #[test]
    fn all_alu_ops_behave() {
        assert_eq!(alu(AluOp::Add, u64::MAX, 1), 0, "wrapping add");
        assert_eq!(alu(AluOp::Sub, 0, 1), u64::MAX, "wrapping sub");
        assert_eq!(alu(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu(AluOp::Shl, 1, 65), 2, "shift amount masked to 6 bits");
        assert_eq!(alu(AluOp::Shr, 8, 2), 2);
        assert_eq!(alu(AluOp::Rem, 17, 5), 2);
        assert_eq!(
            alu(AluOp::Rem, 17, 0),
            0,
            "divide by zero yields zero, no trap"
        );
    }

    #[test]
    fn loop_sums_payload() {
        // Sum 16 u32s stored in a payload segment — the core of Server-Side Sum.
        let mut space = AddressSpace::new();
        let values: Vec<u8> = (1u32..=16).flat_map(|v| v.to_le_bytes()).collect();
        space
            .map(Segment::new(
                "usr",
                0x2000,
                values,
                false,
                SegmentKind::Payload,
            ))
            .unwrap();

        let mut a = Assembler::new();
        // r1 = ptr, r2 = count, r0 = acc
        a.load_imm(Reg(1), 0x2000)
            .load_imm(Reg(2), 16)
            .load_imm(Reg(0), 0)
            .label("loop")
            .load(Width::B4, Reg(3), Reg(1), 0)
            .add(Reg(0), Reg(0), Reg(3))
            .add_imm(Reg(1), Reg(1), 4)
            .alu_imm(AluOp::Sub, Reg(2), Reg(2), 1)
            .jnz(Reg(2), "loop")
            .ret();
        let prog = a.finish().unwrap();
        let stats = run(&prog, &GotImage::default(), &ExternTable::new(), &mut space).unwrap();
        assert_eq!(stats.result, (1..=16u64).sum::<u64>());
        assert!(stats.instructions > 16 * 5);
    }

    #[test]
    fn memcpy_and_store_write_into_heap() {
        let mut space = AddressSpace::new();
        space
            .map(Segment::new(
                "usr",
                0x2000,
                vec![9u8; 64],
                false,
                SegmentKind::Payload,
            ))
            .unwrap();
        space
            .map(Segment::new(
                "heap",
                0x8000,
                vec![0u8; 128],
                true,
                SegmentKind::Heap,
            ))
            .unwrap();
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 0x8000)
            .load_imm(Reg(2), 0x2000)
            .load_imm(Reg(3), 64)
            .memcpy(Reg(1), Reg(2), Reg(3))
            .load_imm(Reg(4), 0xAB)
            .store(Width::B1, Reg(4), Reg(1), 64)
            .load(Width::B8, Reg(0), Reg(1), 0)
            .ret();
        let prog = a.finish().unwrap();
        let stats = run(&prog, &GotImage::default(), &ExternTable::new(), &mut space).unwrap();
        assert_eq!(stats.result, u64::from_le_bytes([9; 8]));
        assert_eq!(space.read(0x8000, 64).unwrap(), &[9u8; 64][..]);
        assert_eq!(space.read(0x8040, 1).unwrap(), &[0xAB]);
    }

    #[test]
    fn extern_call_through_got() {
        let mut externs = ExternTable::new();
        let idx = externs.register("scale", Arc::new(|_ctx, args| Ok(args[0] * args[1])));
        let mut got = GotImage::with_slots(1);
        got.set(0, ExternRef::Resolved(idx));
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 21)
            .load_imm(Reg(1), 2)
            .call_extern(0, 2)
            .ret();
        let prog = a.finish().unwrap();
        let stats = run(&prog, &got, &externs, &mut AddressSpace::new()).unwrap();
        assert_eq!(stats.result, 42);
        assert_eq!(stats.extern_calls, 1);
    }

    #[test]
    fn unresolved_got_slot_is_an_error() {
        let mut a = Assembler::new();
        a.call_extern(0, 0).ret();
        let prog = a.finish().unwrap();
        let err = run(
            &prog,
            &GotImage::with_slots(1),
            &ExternTable::new(),
            &mut AddressSpace::new(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::UnresolvedGot { slot: 0 });
    }

    #[test]
    fn data_slot_is_not_callable() {
        let mut got = GotImage::with_slots(1);
        got.set(0, ExternRef::Data(0x1234));
        let mut a = Assembler::new();
        a.call_extern(0, 0).ret();
        let prog = a.finish().unwrap();
        let err = run(&prog, &got, &ExternTable::new(), &mut AddressSpace::new()).unwrap_err();
        assert_eq!(err, ExecError::NotCallable { slot: 0 });
    }

    #[test]
    fn extern_failure_propagates() {
        let mut externs = ExternTable::new();
        let idx = externs.register("boom", Arc::new(|_ctx, _args| Err("kaboom".to_string())));
        let mut got = GotImage::with_slots(1);
        got.set(0, ExternRef::Resolved(idx));
        let mut a = Assembler::new();
        a.call_extern(0, 0).ret();
        let prog = a.finish().unwrap();
        let err = run(&prog, &got, &externs, &mut AddressSpace::new()).unwrap_err();
        assert!(matches!(err, ExecError::ExternFailed(m) if m.contains("kaboom")));
    }

    #[test]
    fn fault_on_unmapped_memory() {
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 0xdead_0000)
            .load(Width::B8, Reg(0), Reg(1), 0)
            .ret();
        let prog = a.finish().unwrap();
        let err = run(
            &prog,
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Fault(_)));
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut a = Assembler::new();
        a.label("spin").jump("spin");
        let prog = a.finish().unwrap();
        let mut bus = FlatMemory::free();
        let cfg = VmConfig {
            fuel: 1000,
            ..VmConfig::default()
        };
        let err = Vm::execute(
            &prog,
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
            &mut bus,
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::FuelExhausted);
    }

    #[test]
    fn fetch_time_charged_when_code_base_set() {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 1).ret();
        let prog = a.finish().unwrap();
        let mut bus = FlatMemory::free();
        bus.per_access = SimTime::from_ns(3);
        let cfg = VmConfig {
            code_base: 0x7000,
            ..VmConfig::default()
        };
        let stats = Vm::execute(
            &prog,
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
            &mut bus,
            &cfg,
        )
        .unwrap();
        assert!(
            stats.fetch_time >= SimTime::from_ns(6),
            "two instruction fetches charged"
        );
        assert_eq!(stats.result, 1);
    }

    #[test]
    fn entry_regs_seed_initial_register_state() {
        // r0 + r1, where both registers arrive via the entry convention instead of a
        // prepended LoadImm prologue.
        let mut a = Assembler::new();
        a.add(Reg(0), Reg(0), Reg(1)).ret();
        let prog = a.finish().unwrap();
        let mut bus = FlatMemory::free();
        let cfg = VmConfig {
            entry_regs: [40, 2, 0],
            ..VmConfig::default()
        };
        let stats = Vm::execute(
            &prog,
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
            &mut bus,
            &cfg,
        )
        .unwrap();
        assert_eq!(stats.result, 42);
    }

    #[test]
    fn exec_error_display() {
        assert!(ExecError::FuelExhausted.to_string().contains("budget"));
        assert!(ExecError::UnresolvedGot { slot: 2 }
            .to_string()
            .contains("GOT slot 2"));
    }
}
