//! The address space a jam executes against.
//!
//! A jam never sees host pointers. The runtime maps *segments* — the message's ARGS
//! and USR sections, the receiver's heap objects exported by rieds, read-only data —
//! into a simulated address space, and the VM resolves every load/store against those
//! segments. This mirrors the paper's layout where the injected code addresses its
//! arguments and payload PC-relative within the mailbox frame and reaches everything
//! else through the GOT.
//!
//! # The read-mostly / per-shard split
//!
//! [`AddressSpace`] is the plain, exclusively-owned form: one process, one set of
//! segments, `&mut` everywhere. Putting a host's single `AddressSpace` behind one
//! mutex for the whole map → execute → unmap window serialises every receiver shard
//! on every message, which is the second wall-clock ceiling of the multi-shard
//! drain (next to the cache-hierarchy lock).
//!
//! [`ShardSpace`] is the read-mostly execution view that removes that lock for
//! read-only and shard-local handlers. It layers two spaces:
//!
//! * **`local`** — segments this shard owns exclusively: the per-message ARGS/USR
//!   sections and the shard's private scratch/heap instances. Mapped, written and
//!   unmapped with zero synchronisation.
//! * **`shared_ro`** — an [`Arc`]-shared [`AddressSpace`] holding the process-wide
//!   *read-only* segments (rodata, read-only data exports). Because nothing writes
//!   it after publication, any number of shards read it concurrently without locks;
//!   a write to a `shared_ro` address faults with [`MemFault::ReadOnly`].
//!
//! Lookup order is local first, then shared — a shard-local mapping shadows a
//! shared name, which is exactly how per-shard heap instances get resolved by the
//! same symbolic names the exclusive path uses. Handlers that *declare* cross-shard
//! writes do not use a `ShardSpace` at all: the runtime routes them to the single
//! exclusive `AddressSpace` under its mutex, the correctness fallback.
//!
//! The [`JamSpace`] trait is the VM- and extern-facing abstraction both forms
//! implement, so the interpreter is agnostic about which mode a message runs in.

use std::collections::HashMap;
use std::sync::Arc;

/// What a segment holds; used for permissions and for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// The injected code itself (`CODE` section of the frame).
    Code,
    /// The fixed-size argument block (`ARGS`).
    Args,
    /// The user payload (`USR`).
    Payload,
    /// Receiver-resident mutable state exported by a ried (heaps, tables, arrays).
    Heap,
    /// Read-only data (string constants and the like that the toolchain "implicitly
    /// pulls in ... to support functions like printf").
    Rodata,
}

/// One mapped segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Name used to address the segment from the host side.
    pub name: String,
    /// Simulated base virtual address.
    pub base: u64,
    /// Backing bytes.
    pub data: Vec<u8>,
    /// Whether jam stores to this segment are allowed.
    pub writable: bool,
    /// Classification.
    pub kind: SegmentKind,
}

impl Segment {
    /// Create a segment.
    pub fn new(name: &str, base: u64, data: Vec<u8>, writable: bool, kind: SegmentKind) -> Self {
        Segment {
            name: name.to_string(),
            base,
            data,
            writable,
            kind,
        }
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    /// Whether `[addr, addr+len)` lies entirely inside this segment.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr + len as u64 <= self.end()
    }
}

/// A memory access fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// No segment maps the requested range.
    Unmapped {
        /// Faulting address.
        addr: u64,
        /// Access length.
        len: usize,
    },
    /// A store targeted a read-only segment.
    ReadOnly {
        /// Faulting address.
        addr: u64,
        /// Name of the segment.
        segment: String,
    },
    /// Two segments would overlap.
    Overlap {
        /// Name of the segment being mapped.
        name: String,
    },
    /// A segment with this name is already mapped.
    DuplicateName(String),
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::Unmapped { addr, len } => write!(f, "unmapped access at {addr:#x} len {len}"),
            MemFault::ReadOnly { addr, segment } => {
                write!(f, "write to read-only segment {segment} at {addr:#x}")
            }
            MemFault::Overlap { name } => write!(f, "segment {name} overlaps an existing mapping"),
            MemFault::DuplicateName(n) => write!(f, "segment name {n} already mapped"),
        }
    }
}

impl std::error::Error for MemFault {}

/// The set of segments a jam can address.
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    segments: Vec<Segment>,
    by_name: HashMap<String, usize>,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map a segment. Fails on name collision or address overlap.
    pub fn map(&mut self, seg: Segment) -> Result<(), MemFault> {
        if self.by_name.contains_key(&seg.name) {
            return Err(MemFault::DuplicateName(seg.name));
        }
        for existing in &self.segments {
            let disjoint = seg.end() <= existing.base || existing.end() <= seg.base;
            if !disjoint {
                return Err(MemFault::Overlap { name: seg.name });
            }
        }
        self.by_name.insert(seg.name.clone(), self.segments.len());
        self.segments.push(seg);
        Ok(())
    }

    /// Unmap a segment by name, returning it (so the runtime can copy results out).
    pub fn unmap(&mut self, name: &str) -> Option<Segment> {
        let idx = self.by_name.remove(name)?;
        let seg = self.segments.remove(idx);
        // Reindex.
        self.by_name.clear();
        for (i, s) in self.segments.iter().enumerate() {
            self.by_name.insert(s.name.clone(), i);
        }
        Some(seg)
    }

    /// Borrow a segment by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.by_name.get(name).map(|&i| &self.segments[i])
    }

    /// Mutably borrow a segment by name.
    pub fn segment_mut(&mut self, name: &str) -> Option<&mut Segment> {
        let idx = *self.by_name.get(name)?;
        Some(&mut self.segments[idx])
    }

    /// Names of all mapped segments.
    pub fn segment_names(&self) -> Vec<&str> {
        self.segments.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of mapped segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    fn find(&self, addr: u64, len: usize) -> Result<usize, MemFault> {
        self.segments
            .iter()
            .position(|s| s.contains(addr, len))
            .ok_or(MemFault::Unmapped { addr, len })
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], MemFault> {
        let idx = self.find(addr, len)?;
        let seg = &self.segments[idx];
        let off = (addr - seg.base) as usize;
        Ok(&seg.data[off..off + len])
    }

    /// Write `data` at `addr`, honouring the segment's write permission.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let idx = self.find(addr, data.len())?;
        let seg = &mut self.segments[idx];
        if !seg.writable {
            return Err(MemFault::ReadOnly {
                addr,
                segment: seg.name.clone(),
            });
        }
        let off = (addr - seg.base) as usize;
        seg.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a little-endian scalar of `width` bytes, zero-extended to u64.
    pub fn read_scalar(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let bytes = self.read(addr, width)?;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    /// Write the low `width` bytes of `value` little-endian at `addr`.
    pub fn write_scalar(&mut self, addr: u64, value: u64, width: usize) -> Result<(), MemFault> {
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..width])
    }

    /// Copy `len` bytes from `src` to `dst` within the address space.
    pub fn copy(&mut self, dst: u64, src: u64, len: usize) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let data = self.read(src, len)?.to_vec();
        self.write(dst, &data)
    }
}

/// Metadata of a mapped segment, as surfaced to extern functions through
/// [`JamSpace::segment_meta`] (externs address exported objects by symbolic name,
/// never by host pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Simulated base virtual address.
    pub base: u64,
    /// Segment length in bytes.
    pub len: usize,
    /// Whether jam stores to this segment are allowed.
    pub writable: bool,
    /// Classification.
    pub kind: SegmentKind,
}

impl SegmentMeta {
    fn of(seg: &Segment) -> Self {
        SegmentMeta {
            base: seg.base,
            len: seg.data.len(),
            writable: seg.writable,
            kind: seg.kind,
        }
    }
}

/// What the VM and extern functions need from an address space. Implemented by
/// the exclusively-owned [`AddressSpace`] and by the read-mostly per-shard
/// [`ShardSpace`], so the same interpreter serves both execution modes.
pub trait JamSpace {
    /// Read a little-endian scalar of `width` bytes, zero-extended to u64.
    fn read_scalar(&self, addr: u64, width: usize) -> Result<u64, MemFault>;
    /// Write the low `width` bytes of `value` little-endian at `addr`.
    fn write_scalar(&mut self, addr: u64, value: u64, width: usize) -> Result<(), MemFault>;
    /// Read `len` bytes at `addr` into a fresh buffer.
    fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault>;
    /// Write `data` at `addr`, honouring the owning segment's write permission.
    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault>;
    /// Copy `len` bytes from `src` to `dst` within the space.
    fn copy(&mut self, dst: u64, src: u64, len: usize) -> Result<(), MemFault>;
    /// Metadata of the segment mapped under `name`, if any.
    fn segment_meta(&self, name: &str) -> Option<SegmentMeta>;
}

impl JamSpace for AddressSpace {
    fn read_scalar(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        AddressSpace::read_scalar(self, addr, width)
    }

    fn write_scalar(&mut self, addr: u64, value: u64, width: usize) -> Result<(), MemFault> {
        AddressSpace::write_scalar(self, addr, value, width)
    }

    fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        self.read(addr, len).map(<[u8]>::to_vec)
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        self.write(addr, data)
    }

    fn copy(&mut self, dst: u64, src: u64, len: usize) -> Result<(), MemFault> {
        AddressSpace::copy(self, dst, src, len)
    }

    fn segment_meta(&self, name: &str) -> Option<SegmentMeta> {
        self.segment(name).map(SegmentMeta::of)
    }
}

/// The read-mostly per-shard execution view: an exclusively-owned local
/// [`AddressSpace`] (per-message ARGS/USR, per-shard scratch/heap instances)
/// over an `Arc`-shared read-only base. See the module docs for the locking
/// story; in short, nothing here takes any lock, ever.
#[derive(Debug, Clone)]
pub struct ShardSpace {
    /// Shard-owned segments; lookups hit these first (shadowing the base).
    pub local: AddressSpace,
    /// Process-wide read-only segments, shared by every shard without locks.
    shared_ro: Arc<AddressSpace>,
}

impl ShardSpace {
    /// Build a shard view over the given read-only base. The base must contain
    /// only non-writable segments — a writable segment here would let two
    /// shards race through the supposedly lock-free path, so it is rejected.
    pub fn new(shared_ro: Arc<AddressSpace>) -> Result<Self, MemFault> {
        if let Some(seg) = shared_ro.segments.iter().find(|s| s.writable) {
            return Err(MemFault::ReadOnly {
                addr: seg.base,
                segment: seg.name.clone(),
            });
        }
        Ok(ShardSpace {
            local: AddressSpace::new(),
            shared_ro,
        })
    }

    /// Replace the shared read-only base (live update / package reinstall).
    pub fn set_shared_ro(&mut self, shared_ro: Arc<AddressSpace>) -> Result<(), MemFault> {
        if let Some(seg) = shared_ro.segments.iter().find(|s| s.writable) {
            return Err(MemFault::ReadOnly {
                addr: seg.base,
                segment: seg.name.clone(),
            });
        }
        self.shared_ro = shared_ro;
        Ok(())
    }

    /// The shared read-only base.
    pub fn shared_ro(&self) -> &Arc<AddressSpace> {
        &self.shared_ro
    }

    fn find_shared(&self, addr: u64, len: usize) -> Option<&Segment> {
        self.shared_ro
            .segments
            .iter()
            .find(|s| s.contains(addr, len))
    }
}

impl JamSpace for ShardSpace {
    fn read_scalar(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        match self.local.read_scalar(addr, width) {
            Err(MemFault::Unmapped { .. }) => self.shared_ro.read_scalar(addr, width),
            other => other,
        }
    }

    fn write_scalar(&mut self, addr: u64, value: u64, width: usize) -> Result<(), MemFault> {
        match self.local.write_scalar(addr, value, width) {
            Err(MemFault::Unmapped { .. }) => match self.find_shared(addr, width) {
                Some(seg) => Err(MemFault::ReadOnly {
                    addr,
                    segment: seg.name.clone(),
                }),
                None => Err(MemFault::Unmapped { addr, len: width }),
            },
            other => other,
        }
    }

    fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        match self.local.read(addr, len) {
            Ok(bytes) => Ok(bytes.to_vec()),
            Err(MemFault::Unmapped { .. }) => self.shared_ro.read(addr, len).map(<[u8]>::to_vec),
            Err(e) => Err(e),
        }
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        match self.local.write(addr, data) {
            Err(MemFault::Unmapped { .. }) => match self.find_shared(addr, data.len()) {
                Some(seg) => Err(MemFault::ReadOnly {
                    addr,
                    segment: seg.name.clone(),
                }),
                None => Err(MemFault::Unmapped {
                    addr,
                    len: data.len(),
                }),
            },
            other => other,
        }
    }

    fn copy(&mut self, dst: u64, src: u64, len: usize) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let data = self.read_bytes(src, len)?;
        self.write_bytes(dst, &data)
    }

    fn segment_meta(&self, name: &str) -> Option<SegmentMeta> {
        self.local
            .segment(name)
            .or_else(|| self.shared_ro.segment(name))
            .map(SegmentMeta::of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map(Segment::new(
            "args",
            0x1000,
            vec![0; 64],
            false,
            SegmentKind::Args,
        ))
        .unwrap();
        s.map(Segment::new(
            "payload",
            0x2000,
            vec![7; 256],
            false,
            SegmentKind::Payload,
        ))
        .unwrap();
        s.map(Segment::new(
            "heap",
            0x10000,
            vec![0; 4096],
            true,
            SegmentKind::Heap,
        ))
        .unwrap();
        s
    }

    #[test]
    fn map_rejects_overlap_and_duplicates() {
        let mut s = space();
        assert!(matches!(
            s.map(Segment::new(
                "x",
                0x1010,
                vec![0; 16],
                true,
                SegmentKind::Heap
            )),
            Err(MemFault::Overlap { .. })
        ));
        assert!(matches!(
            s.map(Segment::new(
                "heap",
                0x90000,
                vec![0; 16],
                true,
                SegmentKind::Heap
            )),
            Err(MemFault::DuplicateName(_))
        ));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn read_write_respect_permissions() {
        let mut s = space();
        s.write(0x10000, b"hello").unwrap();
        assert_eq!(s.read(0x10000, 5).unwrap(), b"hello");
        assert!(matches!(
            s.write(0x1000, b"x"),
            Err(MemFault::ReadOnly { .. })
        ));
        assert!(matches!(s.read(0x5000, 4), Err(MemFault::Unmapped { .. })));
        // Cross-segment access is unmapped even if both ends exist.
        assert!(matches!(s.read(0x103F, 8), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn scalars_roundtrip() {
        let mut s = space();
        s.write_scalar(0x10008, 0xAABB_CCDD, 4).unwrap();
        assert_eq!(s.read_scalar(0x10008, 4).unwrap(), 0xAABB_CCDD);
        s.write_scalar(0x10010, u64::MAX, 8).unwrap();
        assert_eq!(s.read_scalar(0x10010, 8).unwrap(), u64::MAX);
        s.write_scalar(0x10020, 0x1234, 1).unwrap();
        assert_eq!(
            s.read_scalar(0x10020, 1).unwrap(),
            0x34,
            "truncated to one byte"
        );
    }

    #[test]
    fn copy_moves_payload_into_heap() {
        let mut s = space();
        s.copy(0x10000, 0x2000, 128).unwrap();
        assert!(s.read(0x10000, 128).unwrap().iter().all(|&b| b == 7));
        // copy into read-only fails
        assert!(s.copy(0x1000, 0x2000, 8).is_err());
        // zero-length copy is fine anywhere mapped or not
        assert!(s.copy(0x1000, 0x2000, 0).is_ok());
    }

    #[test]
    fn unmap_returns_segment_and_reindexes() {
        let mut s = space();
        let seg = s.unmap("payload").unwrap();
        assert_eq!(seg.data.len(), 256);
        assert!(s.segment("payload").is_none());
        assert!(
            s.segment("heap").is_some(),
            "other segments still reachable after reindex"
        );
        assert!(s.unmap("payload").is_none());
        assert_eq!(s.segment_names().len(), 2);
    }

    #[test]
    fn segment_helpers() {
        let s = space();
        let heap = s.segment("heap").unwrap();
        assert_eq!(heap.end(), 0x10000 + 4096);
        assert!(heap.contains(0x10FFF, 1));
        assert!(!heap.contains(0x10FFF, 2));
        assert!(!s.is_empty());
    }

    fn shard_space() -> ShardSpace {
        let mut ro = AddressSpace::new();
        ro.map(Segment::new(
            "lib.rodata",
            0x4000,
            (0..64u8).collect(),
            false,
            SegmentKind::Rodata,
        ))
        .unwrap();
        let mut s = ShardSpace::new(Arc::new(ro)).unwrap();
        s.local
            .map(Segment::new(
                "heap",
                0x10000,
                vec![0; 256],
                true,
                SegmentKind::Heap,
            ))
            .unwrap();
        s
    }

    #[test]
    fn shard_space_layers_local_over_shared_ro() {
        let mut s = shard_space();
        // Reads reach both layers; writes only the local one.
        assert_eq!(s.read_bytes(0x4000, 4).unwrap(), vec![0, 1, 2, 3]);
        s.write_scalar(0x10000, 0xAB, 1).unwrap();
        assert_eq!(s.read_scalar(0x10000, 1).unwrap(), 0xAB);
        // Copy from the shared base into the local heap works lock-free.
        JamSpace::copy(&mut s, 0x10010, 0x4000, 8).unwrap();
        assert_eq!(
            s.read_bytes(0x10010, 8).unwrap(),
            (0..8u8).collect::<Vec<_>>()
        );
        // Writing the shared base faults as read-only, not unmapped.
        assert!(matches!(
            s.write_scalar(0x4000, 1, 8),
            Err(MemFault::ReadOnly { .. })
        ));
        // Untouched addresses are unmapped.
        assert!(matches!(
            s.read_bytes(0x9999_0000, 1),
            Err(MemFault::Unmapped { .. })
        ));
    }

    #[test]
    fn shard_space_local_shadows_shared_names() {
        let mut s = shard_space();
        s.local
            .map(Segment::new(
                "lib.rodata",
                0x8000,
                vec![9; 16],
                true,
                SegmentKind::Heap,
            ))
            .unwrap();
        let meta = s.segment_meta("lib.rodata").unwrap();
        assert_eq!(meta.base, 0x8000, "local instance wins the name lookup");
        assert!(meta.writable);
        assert_eq!(s.segment_meta("heap").unwrap().len, 256);
        assert!(s.segment_meta("missing").is_none());
    }

    #[test]
    fn shard_space_rejects_writable_shared_base() {
        let mut ro = AddressSpace::new();
        ro.map(Segment::new(
            "heap",
            0x1000,
            vec![0; 8],
            true,
            SegmentKind::Heap,
        ))
        .unwrap();
        assert!(matches!(
            ShardSpace::new(Arc::new(ro)),
            Err(MemFault::ReadOnly { .. })
        ));
    }

    #[test]
    fn faults_display() {
        assert!(MemFault::Unmapped { addr: 0x10, len: 4 }
            .to_string()
            .contains("unmapped"));
        assert!(MemFault::ReadOnly {
            addr: 1,
            segment: "args".into()
        }
        .to_string()
        .contains("read-only"));
    }
}
