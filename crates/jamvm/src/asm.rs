//! A small assembler with labels, used by the build toolchain to author jams.
//!
//! The assembler collects instructions and named labels, then resolves label
//! references into absolute instruction indices when [`Assembler::finish`] is called.
//! Forward references are allowed.

use std::collections::HashMap;

use crate::isa::{AluOp, Cond, Instr, Reg, Width};

/// Error produced when a program cannot be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label: {l}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Slot {
    Ready(Instr),
    /// A jump/branch whose target label is not yet resolved.
    PendingJump {
        label: String,
    },
    PendingBranch {
        cond: Cond,
        a: Reg,
        b: Reg,
        label: String,
    },
}

/// The assembler.
#[derive(Debug, Default, Clone)]
pub struct Assembler {
    slots: Vec<Slot>,
    labels: HashMap<String, u32>,
    dup: Option<String>,
}

impl Assembler {
    /// Create an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.slots.len() as u32)
            .is_some()
        {
            self.dup = Some(name.to_string());
        }
        self
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.slots.push(Slot::Ready(i));
        self
    }

    /// `dst = imm`
    pub fn load_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Instr::LoadImm { dst, imm })
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op: AluOp::Add,
            dst,
            a,
            b,
        })
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op: AluOp::Sub,
            dst,
            a,
            b,
        })
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op: AluOp::Mul,
            dst,
            a,
            b,
        })
    }

    /// `dst = src <op> imm`
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, src: Reg, imm: u64) -> &mut Self {
        self.push(Instr::AluImm { op, dst, src, imm })
    }

    /// `dst = src + imm`
    pub fn add_imm(&mut self, dst: Reg, src: Reg, imm: u64) -> &mut Self {
        self.alu_imm(AluOp::Add, dst, src, imm)
    }

    /// Load with the given width.
    pub fn load(&mut self, width: Width, dst: Reg, addr: Reg, offset: u32) -> &mut Self {
        self.push(Instr::Load {
            width,
            dst,
            addr,
            offset,
        })
    }

    /// Store with the given width.
    pub fn store(&mut self, width: Width, src: Reg, addr: Reg, offset: u32) -> &mut Self {
        self.push(Instr::Store {
            width,
            src,
            addr,
            offset,
        })
    }

    /// Bulk copy.
    pub fn memcpy(&mut self, dst: Reg, src: Reg, len: Reg) -> &mut Self {
        self.push(Instr::Memcpy { dst, src, len })
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.slots.push(Slot::PendingJump {
            label: label.to_string(),
        });
        self
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.slots.push(Slot::PendingBranch {
            cond,
            a,
            b,
            label: label.to_string(),
        });
        self
    }

    /// Branch if `a` is zero.
    pub fn jz(&mut self, a: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Zero, a, a, label)
    }

    /// Branch if `a` is non-zero.
    pub fn jnz(&mut self, a: Reg, label: &str) -> &mut Self {
        self.branch(Cond::NotZero, a, a, label)
    }

    /// Branch if `a < b`.
    pub fn jlt(&mut self, a: Reg, b: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Less, a, b, label)
    }

    /// Call an external symbol through a GOT slot.
    pub fn call_extern(&mut self, slot: u16, nargs: u8) -> &mut Self {
        self.push(Instr::CallExtern { slot, nargs })
    }

    /// Hash `src` into `dst`.
    pub fn hash(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Hash { dst, src })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Return.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolve labels and produce the final instruction sequence.
    pub fn finish(self) -> Result<Vec<Instr>, AsmError> {
        if let Some(d) = self.dup {
            return Err(AsmError::DuplicateLabel(d));
        }
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            let instr = match slot {
                Slot::Ready(i) => i,
                Slot::PendingJump { label } => {
                    let target = *self
                        .labels
                        .get(&label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    Instr::Jump { target }
                }
                Slot::PendingBranch { cond, a, b, label } => {
                    let target = *self
                        .labels
                        .get(&label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    Instr::Branch { cond, a, b, target }
                }
            };
            out.push(instr);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 3)
            .label("loop")
            .alu_imm(AluOp::Sub, Reg(0), Reg(0), 1)
            .jnz(Reg(0), "loop")
            .jump("end")
            .nop()
            .label("end")
            .ret();
        let prog = a.finish().unwrap();
        assert_eq!(prog[2].target(), Some(1), "backward branch to loop");
        assert_eq!(prog[3].target(), Some(5), "forward jump to end");
        assert_eq!(prog.len(), 6);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.jump("nowhere");
        assert_eq!(a.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new();
        a.label("x").nop().label("x").ret();
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn builder_methods_emit_expected_instructions() {
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 7)
            .mov(Reg(2), Reg(1))
            .add(Reg(3), Reg(1), Reg(2))
            .sub(Reg(3), Reg(3), Reg(1))
            .mul(Reg(3), Reg(3), Reg(2))
            .add_imm(Reg(3), Reg(3), 5)
            .load(Width::B8, Reg(4), Reg(3), 0)
            .store(Width::B4, Reg(4), Reg(3), 8)
            .memcpy(Reg(5), Reg(6), Reg(7))
            .call_extern(2, 1)
            .hash(Reg(8), Reg(1))
            .ret();
        assert_eq!(a.len(), 12);
        assert!(!a.is_empty());
        let prog = a.finish().unwrap();
        assert!(matches!(prog[0], Instr::LoadImm { imm: 7, .. }));
        assert!(matches!(prog[9], Instr::CallExtern { slot: 2, nargs: 1 }));
        assert!(matches!(prog[11], Instr::Ret));
    }

    #[test]
    fn errors_display() {
        assert!(AsmError::UndefinedLabel("a".into())
            .to_string()
            .contains("undefined"));
        assert!(AsmError::DuplicateLabel("b".into())
            .to_string()
            .contains("duplicate"));
    }
}
