//! Binary encoding of jam bytecode — the `.text` section that ships in messages.
//!
//! The encoding is compact but fixed-layout per opcode, so decoding is cheap and the
//! byte size of a jam is a deterministic function of its instruction sequence. The
//! injected-function experiments in the paper reason about code size in bytes (the
//! Indirect Put jam is 1408 bytes on the wire); the toolchain uses this module to
//! measure and pad `.text`.

use crate::isa::{AluOp, Cond, Instr, Reg, Width};

/// Errors produced while decoding a `.text` blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte at the given offset.
    BadOpcode {
        /// Byte offset of the offending opcode.
        offset: usize,
        /// The opcode value.
        opcode: u8,
    },
    /// The blob ended in the middle of an instruction.
    Truncated {
        /// Byte offset where more bytes were expected.
        offset: usize,
    },
    /// A field held an invalid value (e.g. an out-of-range width code).
    BadField {
        /// Byte offset of the instruction.
        offset: usize,
        /// Description of the field.
        field: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode { offset, opcode } => {
                write!(f, "bad opcode {opcode:#04x} at offset {offset}")
            }
            DecodeError::Truncated { offset } => {
                write!(f, "truncated instruction at offset {offset}")
            }
            DecodeError::BadField { offset, field } => {
                write!(f, "invalid {field} field at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const LOAD_IMM: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const ALU: u8 = 0x03;
    pub const ALU_IMM: u8 = 0x04;
    pub const LOAD: u8 = 0x05;
    pub const STORE: u8 = 0x06;
    pub const MEMCPY: u8 = 0x07;
    pub const JUMP: u8 = 0x08;
    pub const BRANCH: u8 = 0x09;
    pub const CALL_EXTERN: u8 = 0x0A;
    pub const HASH: u8 = 0x0B;
    pub const NOP: u8 = 0x0C;
    pub const RET: u8 = 0x0D;
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::And => 3,
        AluOp::Or => 4,
        AluOp::Xor => 5,
        AluOp::Shl => 6,
        AluOp::Shr => 7,
        AluOp::Rem => 8,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::And,
        4 => AluOp::Or,
        5 => AluOp::Xor,
        6 => AluOp::Shl,
        7 => AluOp::Shr,
        8 => AluOp::Rem,
        _ => return None,
    })
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::B1 => 0,
        Width::B4 => 1,
        Width::B8 => 2,
    }
}

fn width_from(code: u8) -> Option<Width> {
    Some(match code {
        0 => Width::B1,
        1 => Width::B4,
        2 => Width::B8,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Zero => 0,
        Cond::NotZero => 1,
        Cond::Less => 2,
        Cond::GreaterEq => 3,
    }
}

fn cond_from(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Zero,
        1 => Cond::NotZero,
        2 => Cond::Less,
        3 => Cond::GreaterEq,
        _ => return None,
    })
}

/// Encoded size in bytes of one instruction.
pub fn encoded_size(i: &Instr) -> usize {
    match i {
        Instr::LoadImm { .. } => 10,
        Instr::Mov { .. } => 3,
        Instr::Alu { .. } => 5,
        Instr::AluImm { .. } => 12,
        Instr::Load { .. } => 8,
        Instr::Store { .. } => 8,
        Instr::Memcpy { .. } => 4,
        Instr::Jump { .. } => 5,
        Instr::Branch { .. } => 8,
        Instr::CallExtern { .. } => 4,
        Instr::Hash { .. } => 3,
        Instr::Nop => 1,
        Instr::Ret => 1,
    }
}

/// Encode a program to its wire representation.
pub fn encode_program(program: &[Instr]) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.iter().map(encoded_size).sum());
    for i in program {
        encode_instr(i, &mut out);
    }
    out
}

fn encode_instr(i: &Instr, out: &mut Vec<u8>) {
    match *i {
        Instr::LoadImm { dst, imm } => {
            out.push(op::LOAD_IMM);
            out.push(dst.0);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::Mov { dst, src } => {
            out.push(op::MOV);
            out.push(dst.0);
            out.push(src.0);
        }
        Instr::Alu { op: o, dst, a, b } => {
            out.push(op::ALU);
            out.push(alu_code(o));
            out.push(dst.0);
            out.push(a.0);
            out.push(b.0);
        }
        Instr::AluImm {
            op: o,
            dst,
            src,
            imm,
        } => {
            out.push(op::ALU_IMM);
            out.push(alu_code(o));
            out.push(dst.0);
            out.push(src.0);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::Load {
            width,
            dst,
            addr,
            offset,
        } => {
            out.push(op::LOAD);
            out.push(width_code(width));
            out.push(dst.0);
            out.push(addr.0);
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Instr::Store {
            width,
            src,
            addr,
            offset,
        } => {
            out.push(op::STORE);
            out.push(width_code(width));
            out.push(src.0);
            out.push(addr.0);
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Instr::Memcpy { dst, src, len } => {
            out.push(op::MEMCPY);
            out.push(dst.0);
            out.push(src.0);
            out.push(len.0);
        }
        Instr::Jump { target } => {
            out.push(op::JUMP);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::Branch { cond, a, b, target } => {
            out.push(op::BRANCH);
            out.push(cond_code(cond));
            out.push(a.0);
            out.push(b.0);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Instr::CallExtern { slot, nargs } => {
            out.push(op::CALL_EXTERN);
            out.extend_from_slice(&slot.to_le_bytes());
            out.push(nargs);
        }
        Instr::Hash { dst, src } => {
            out.push(op::HASH);
            out.push(dst.0);
            out.push(src.0);
        }
        Instr::Nop => out.push(op::NOP),
        Instr::Ret => out.push(op::RET),
    }
}

/// Decode a `.text` blob back into instructions.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let opcode = bytes[pos];
        pos += 1;
        let need = |n: usize, pos: usize| -> Result<(), DecodeError> {
            if pos + n <= bytes.len() {
                Ok(())
            } else {
                Err(DecodeError::Truncated { offset: start })
            }
        };
        let instr = match opcode {
            op::LOAD_IMM => {
                need(9, pos)?;
                let dst = Reg(bytes[pos]);
                let imm = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap());
                pos += 9;
                Instr::LoadImm { dst, imm }
            }
            op::MOV => {
                need(2, pos)?;
                let i = Instr::Mov {
                    dst: Reg(bytes[pos]),
                    src: Reg(bytes[pos + 1]),
                };
                pos += 2;
                i
            }
            op::ALU => {
                need(4, pos)?;
                let o = alu_from(bytes[pos]).ok_or(DecodeError::BadField {
                    offset: start,
                    field: "alu op",
                })?;
                let i = Instr::Alu {
                    op: o,
                    dst: Reg(bytes[pos + 1]),
                    a: Reg(bytes[pos + 2]),
                    b: Reg(bytes[pos + 3]),
                };
                pos += 4;
                i
            }
            op::ALU_IMM => {
                need(11, pos)?;
                let o = alu_from(bytes[pos]).ok_or(DecodeError::BadField {
                    offset: start,
                    field: "alu op",
                })?;
                let dst = Reg(bytes[pos + 1]);
                let src = Reg(bytes[pos + 2]);
                let imm = u64::from_le_bytes(bytes[pos + 3..pos + 11].try_into().unwrap());
                pos += 11;
                Instr::AluImm {
                    op: o,
                    dst,
                    src,
                    imm,
                }
            }
            op::LOAD => {
                need(7, pos)?;
                let width = width_from(bytes[pos]).ok_or(DecodeError::BadField {
                    offset: start,
                    field: "width",
                })?;
                let dst = Reg(bytes[pos + 1]);
                let addr = Reg(bytes[pos + 2]);
                let offset = u32::from_le_bytes(bytes[pos + 3..pos + 7].try_into().unwrap());
                pos += 7;
                Instr::Load {
                    width,
                    dst,
                    addr,
                    offset,
                }
            }
            op::STORE => {
                need(7, pos)?;
                let width = width_from(bytes[pos]).ok_or(DecodeError::BadField {
                    offset: start,
                    field: "width",
                })?;
                let src = Reg(bytes[pos + 1]);
                let addr = Reg(bytes[pos + 2]);
                let offset = u32::from_le_bytes(bytes[pos + 3..pos + 7].try_into().unwrap());
                pos += 7;
                Instr::Store {
                    width,
                    src,
                    addr,
                    offset,
                }
            }
            op::MEMCPY => {
                need(3, pos)?;
                let i = Instr::Memcpy {
                    dst: Reg(bytes[pos]),
                    src: Reg(bytes[pos + 1]),
                    len: Reg(bytes[pos + 2]),
                };
                pos += 3;
                i
            }
            op::JUMP => {
                need(4, pos)?;
                let target = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
                pos += 4;
                Instr::Jump { target }
            }
            op::BRANCH => {
                need(7, pos)?;
                let cond = cond_from(bytes[pos]).ok_or(DecodeError::BadField {
                    offset: start,
                    field: "cond",
                })?;
                let a = Reg(bytes[pos + 1]);
                let b = Reg(bytes[pos + 2]);
                let target = u32::from_le_bytes(bytes[pos + 3..pos + 7].try_into().unwrap());
                pos += 7;
                Instr::Branch { cond, a, b, target }
            }
            op::CALL_EXTERN => {
                need(3, pos)?;
                let slot = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap());
                let nargs = bytes[pos + 2];
                pos += 3;
                Instr::CallExtern { slot, nargs }
            }
            op::HASH => {
                need(2, pos)?;
                let i = Instr::Hash {
                    dst: Reg(bytes[pos]),
                    src: Reg(bytes[pos + 1]),
                };
                pos += 2;
                i
            }
            op::NOP => Instr::Nop,
            op::RET => Instr::Ret,
            other => {
                return Err(DecodeError::BadOpcode {
                    offset: start,
                    opcode: other,
                })
            }
        };
        out.push(instr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond, Reg, Width};

    fn sample_program() -> Vec<Instr> {
        vec![
            Instr::LoadImm {
                dst: Reg(1),
                imm: 0xDEAD_BEEF_0000_1234,
            },
            Instr::Mov {
                dst: Reg(2),
                src: Reg(1),
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(3),
                a: Reg(1),
                b: Reg(2),
            },
            Instr::AluImm {
                op: AluOp::Shl,
                dst: Reg(3),
                src: Reg(3),
                imm: 3,
            },
            Instr::Load {
                width: Width::B4,
                dst: Reg(4),
                addr: Reg(3),
                offset: 16,
            },
            Instr::Store {
                width: Width::B8,
                src: Reg(4),
                addr: Reg(3),
                offset: 24,
            },
            Instr::Memcpy {
                dst: Reg(5),
                src: Reg(6),
                len: Reg(7),
            },
            Instr::Jump { target: 9 },
            Instr::Branch {
                cond: Cond::Less,
                a: Reg(1),
                b: Reg(2),
                target: 2,
            },
            Instr::CallExtern { slot: 3, nargs: 2 },
            Instr::Hash {
                dst: Reg(8),
                src: Reg(1),
            },
            Instr::Nop,
            Instr::Ret,
        ]
    }

    #[test]
    fn roundtrip_every_opcode() {
        let prog = sample_program();
        let bytes = encode_program(&prog);
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(decoded, prog);
    }

    #[test]
    fn encoded_size_matches_actual_bytes() {
        for i in sample_program() {
            let bytes = encode_program(&[i]);
            assert_eq!(bytes.len(), encoded_size(&i), "{i:?}");
        }
    }

    #[test]
    fn truncated_blob_is_rejected() {
        // Cut a multi-byte instruction (LoadImm is 10 bytes) in half.
        let mut bytes = encode_program(&[Instr::LoadImm {
            dst: Reg(1),
            imm: 42,
        }]);
        bytes.truncate(5);
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert!(matches!(
            decode_program(&[0xFF]),
            Err(DecodeError::BadOpcode { opcode: 0xFF, .. })
        ));
    }

    #[test]
    fn bad_field_is_rejected() {
        // ALU with op code 42
        let bytes = vec![0x03, 42, 0, 0, 0];
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::BadField {
                field: "alu op",
                ..
            })
        ));
        // Load with width code 9
        let bytes = vec![0x05, 9, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::BadField { field: "width", .. })
        ));
    }

    #[test]
    fn empty_program_decodes_to_empty() {
        assert_eq!(decode_program(&[]).unwrap(), vec![]);
        assert!(encode_program(&[]).is_empty());
    }

    #[test]
    fn errors_display() {
        let e = DecodeError::BadOpcode {
            offset: 3,
            opcode: 0xAA,
        };
        assert!(e.to_string().contains("0xaa"));
        assert!(DecodeError::Truncated { offset: 1 }
            .to_string()
            .contains("truncated"));
    }
}
