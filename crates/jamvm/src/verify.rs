//! Static verification of jam bytecode.
//!
//! Code that arrived over the network is verified before execution: every register
//! index must be in range, every branch target must land inside the program, every
//! GOT slot referenced must exist in the declared GOT size, and the program must end
//! with (or be guaranteed to reach) a `Ret`. This is the reproduction's analogue of
//! the trust boundary the paper discusses in §V — while the paper executes raw
//! machine code and leans on RKEY protection and deployment isolation, a memory-safe
//! reproduction gets to check the code before running it.

use crate::isa::{Instr, NUM_REGS};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program is empty.
    Empty,
    /// An instruction uses a register index outside `r0..r15`.
    BadRegister {
        /// Instruction index.
        at: usize,
    },
    /// A branch target points outside the program.
    BadTarget {
        /// Instruction index of the branch.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A `CallExtern` references a GOT slot beyond the declared GOT size.
    BadGotSlot {
        /// Instruction index.
        at: usize,
        /// The referenced slot.
        slot: u16,
        /// Declared number of GOT slots.
        got_slots: usize,
    },
    /// A `CallExtern` declares more than 6 argument registers.
    TooManyArgs {
        /// Instruction index.
        at: usize,
        /// Declared argument count.
        nargs: u8,
    },
    /// Execution can fall off the end of the program (the last reachable
    /// straight-line instruction is not a `Ret` or unconditional `Jump`).
    MissingRet,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::BadRegister { at } => write!(f, "invalid register at instruction {at}"),
            VerifyError::BadTarget { at, target } => {
                write!(f, "branch target {target} out of range at instruction {at}")
            }
            VerifyError::BadGotSlot {
                at,
                slot,
                got_slots,
            } => write!(
                f,
                "GOT slot {slot} referenced at instruction {at} but only {got_slots} slots declared"
            ),
            VerifyError::TooManyArgs { at, nargs } => {
                write!(
                    f,
                    "extern call with {nargs} args at instruction {at} (max 6)"
                )
            }
            VerifyError::MissingRet => {
                write!(f, "control flow can fall off the end of the program")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify `program` against a GOT with `got_slots` slots.
pub fn verify(program: &[Instr], got_slots: usize) -> Result<(), VerifyError> {
    if program.is_empty() {
        return Err(VerifyError::Empty);
    }
    for (at, instr) in program.iter().enumerate() {
        // Registers.
        for r in instr.reads() {
            if r.0 as usize >= NUM_REGS {
                return Err(VerifyError::BadRegister { at });
            }
        }
        if let Some(w) = instr.writes() {
            if w.0 as usize >= NUM_REGS {
                return Err(VerifyError::BadRegister { at });
            }
        }
        // Branch targets.
        if let Some(t) = instr.target() {
            if t as usize >= program.len() {
                return Err(VerifyError::BadTarget { at, target: t });
            }
        }
        // Extern calls.
        if let Instr::CallExtern { slot, nargs } = *instr {
            if slot as usize >= got_slots {
                return Err(VerifyError::BadGotSlot {
                    at,
                    slot,
                    got_slots,
                });
            }
            if nargs > 6 {
                return Err(VerifyError::TooManyArgs { at, nargs });
            }
        }
    }
    // Termination: the final instruction must not allow execution to fall through
    // the end of the code.
    match program.last().unwrap() {
        Instr::Ret | Instr::Jump { .. } => Ok(()),
        _ => Err(VerifyError::MissingRet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond, Reg};

    fn ok_prog() -> Vec<Instr> {
        vec![
            Instr::LoadImm {
                dst: Reg(0),
                imm: 1,
            },
            Instr::CallExtern { slot: 0, nargs: 1 },
            Instr::Ret,
        ]
    }

    #[test]
    fn valid_program_passes() {
        assert!(verify(&ok_prog(), 1).is_ok());
    }

    #[test]
    fn empty_program_fails() {
        assert_eq!(verify(&[], 0), Err(VerifyError::Empty));
    }

    #[test]
    fn bad_register_fails() {
        let p = vec![
            Instr::Mov {
                dst: Reg(16),
                src: Reg(0),
            },
            Instr::Ret,
        ];
        assert_eq!(verify(&p, 0), Err(VerifyError::BadRegister { at: 0 }));
        let p = vec![
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Reg(0),
                b: Reg(200),
            },
            Instr::Ret,
        ];
        assert_eq!(verify(&p, 0), Err(VerifyError::BadRegister { at: 0 }));
    }

    #[test]
    fn bad_branch_target_fails() {
        let p = vec![Instr::Jump { target: 9 }, Instr::Ret];
        assert_eq!(
            verify(&p, 0),
            Err(VerifyError::BadTarget { at: 0, target: 9 })
        );
        let p = vec![
            Instr::Branch {
                cond: Cond::Zero,
                a: Reg(0),
                b: Reg(0),
                target: 2,
            },
            Instr::Ret,
        ];
        assert!(matches!(verify(&p, 0), Err(VerifyError::BadTarget { .. })));
    }

    #[test]
    fn got_slot_bounds_enforced() {
        let p = ok_prog();
        assert!(matches!(
            verify(&p, 0),
            Err(VerifyError::BadGotSlot {
                slot: 0,
                got_slots: 0,
                ..
            })
        ));
        assert!(verify(&p, 1).is_ok());
    }

    #[test]
    fn arg_count_limit_enforced() {
        let p = vec![Instr::CallExtern { slot: 0, nargs: 7 }, Instr::Ret];
        assert!(matches!(
            verify(&p, 1),
            Err(VerifyError::TooManyArgs { nargs: 7, .. })
        ));
    }

    #[test]
    fn falling_off_the_end_fails() {
        let p = vec![Instr::LoadImm {
            dst: Reg(0),
            imm: 1,
        }];
        assert_eq!(verify(&p, 0), Err(VerifyError::MissingRet));
        // Ending with an unconditional jump back into the program is allowed.
        let p = vec![Instr::Nop, Instr::Jump { target: 0 }];
        assert!(verify(&p, 0).is_ok());
    }

    #[test]
    fn errors_display() {
        assert!(VerifyError::MissingRet.to_string().contains("fall off"));
        assert!(VerifyError::BadGotSlot {
            at: 1,
            slot: 2,
            got_slots: 1
        }
        .to_string()
        .contains("GOT"));
    }
}
