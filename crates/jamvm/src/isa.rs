//! The jam instruction set.
//!
//! A small register machine: 16 general-purpose 64-bit registers, relative branches,
//! byte/word/doubleword loads and stores, a bulk copy, and an external call that goes
//! through a GOT slot — the bytecode-level analogue of the paper's "all references to
//! the global offset table redirect through a pointer stored at a fixed PC-relative
//! location".

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// A register index (`r0`–`r15`).
///
/// By convention, `r0`–`r5` carry arguments into a jam and into extern calls, and
/// `r0` carries return values out; `r15` is a scratch register the assembler may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// First argument / return value register.
    pub const R0: Reg = Reg(0);
    /// Second argument register.
    pub const R1: Reg = Reg(1);
    /// Third argument register.
    pub const R2: Reg = Reg(2);
    /// Fourth argument register.
    pub const R3: Reg = Reg(3);
    /// Fifth argument register.
    pub const R4: Reg = Reg(4);
    /// Sixth argument register.
    pub const R5: Reg = Reg(5);

    /// Whether the register index is valid.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 4 bytes (little endian).
    B4,
    /// 8 bytes (little endian).
    B8,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Condition for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the register is zero.
    Zero,
    /// Branch if the register is non-zero.
    NotZero,
    /// Branch if `a < b` (unsigned).
    Less,
    /// Branch if `a >= b` (unsigned).
    GreaterEq,
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by the low 6 bits of the rhs).
    Shl,
    /// Logical shift right (by the low 6 bits of the rhs).
    Shr,
    /// Unsigned remainder (rhs of zero yields zero, no trap).
    Rem,
}

/// One jam instruction. Instruction indices (not byte offsets) are the unit of
/// control flow: branch targets are absolute instruction indices produced by the
/// assembler from labels, which keeps the bytecode position independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = imm`
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a <op> b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = src <op> imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        src: Reg,
        /// Immediate right operand.
        imm: u64,
    },
    /// `dst = *(addr + offset)` with the given width (zero-extended).
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: u32,
    },
    /// `*(addr + offset) = src` with the given width (truncated).
    Store {
        /// Access width.
        width: Width,
        /// Source register.
        src: Reg,
        /// Base address register.
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: u32,
    },
    /// Copy `len` bytes from `src` to `dst` (registers hold addresses; `len` is a
    /// register holding the byte count). The workhorse of Indirect Put.
    Memcpy {
        /// Destination address register.
        dst: Reg,
        /// Source address register.
        src: Reg,
        /// Length register.
        len: Reg,
    },
    /// Unconditional branch to instruction index `target`.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch.
    Branch {
        /// Condition to evaluate.
        cond: Cond,
        /// First register operand.
        a: Reg,
        /// Second register operand (ignored for Zero/NotZero).
        b: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Call the external function bound to GOT slot `slot`, passing `nargs` arguments
    /// from `r0..` and leaving the result in `r0`. This is the *only* mechanism by
    /// which injected code reaches receiver-resident code or data.
    CallExtern {
        /// GOT slot index.
        slot: u16,
        /// Number of argument registers to pass (0–6).
        nargs: u8,
    },
    /// Mix the value of `src` with a 64-bit finalizer hash into `dst` (the hash-probe
    /// primitive the Indirect Put jam uses to pick a bucket).
    Hash {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// No operation (used by the toolchain to pad `.text` to a target size, the way
    /// the paper's fixed frames round code up to 64-byte boundaries).
    Nop,
    /// Return from the jam; the value in `r0` is the jam's result.
    Ret,
}

impl Instr {
    /// Registers read by this instruction (for the verifier and for tests).
    pub fn reads(&self) -> Vec<Reg> {
        match *self {
            Instr::LoadImm { .. } | Instr::Jump { .. } | Instr::Nop | Instr::Ret => vec![],
            Instr::Mov { src, .. } => vec![src],
            Instr::Alu { a, b, .. } => vec![a, b],
            Instr::AluImm { src, .. } => vec![src],
            Instr::Load { addr, .. } => vec![addr],
            Instr::Store { src, addr, .. } => vec![src, addr],
            Instr::Memcpy { dst, src, len } => vec![dst, src, len],
            Instr::Branch { a, b, cond, .. } => match cond {
                Cond::Zero | Cond::NotZero => vec![a],
                _ => vec![a, b],
            },
            Instr::CallExtern { nargs, .. } => (0..nargs).map(Reg).collect(),
            Instr::Hash { src, .. } => vec![src],
        }
    }

    /// The register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        match *self {
            Instr::LoadImm { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Alu { dst, .. }
            | Instr::AluImm { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Hash { dst, .. } => Some(dst),
            Instr::CallExtern { .. } => Some(Reg::R0),
            _ => None,
        }
    }

    /// Branch target, if this is a control-flow instruction.
    pub fn target(&self) -> Option<u32> {
        match *self {
            Instr::Jump { target } | Instr::Branch { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// The well-known hash finalizer used by [`Instr::Hash`]; exposed so that receiver
/// side code (rieds, tests, examples) can compute the same bucket a jam will compute.
pub fn hash64(x: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a byte slice to 64 bits (FNV-1a over 8-byte lanes, finalized with
/// [`hash64`]). This is the content key the runtime's injected-code cache uses to
/// recognise a previously decoded `.text`/GOT blob without re-decoding it.
pub fn hash64_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in bytes.chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = (h ^ u64::from_le_bytes(lane)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash64(h ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_bytes_is_deterministic_and_length_sensitive() {
        let a = hash64_bytes(b"two-chains");
        assert_eq!(a, hash64_bytes(b"two-chains"));
        assert_ne!(a, hash64_bytes(b"two-chainz"));
        // Trailing zero bytes must not collide with a shorter slice (the zero-padded
        // final lane is disambiguated by folding in the length).
        assert_ne!(hash64_bytes(&[1, 2, 3]), hash64_bytes(&[1, 2, 3, 0]));
        assert_ne!(hash64_bytes(&[]), hash64_bytes(&[0]));
    }

    #[test]
    fn register_display_and_validity() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert!(Reg(15).is_valid());
        assert!(!Reg(16).is_valid());
    }

    #[test]
    fn width_sizes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn reads_and_writes_are_reported() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            a: Reg(3),
            b: Reg(4),
        };
        assert_eq!(i.reads(), vec![Reg(3), Reg(4)]);
        assert_eq!(i.writes(), Some(Reg(2)));

        let c = Instr::CallExtern { slot: 1, nargs: 3 };
        assert_eq!(c.reads(), vec![Reg(0), Reg(1), Reg(2)]);
        assert_eq!(c.writes(), Some(Reg::R0));

        let b = Instr::Branch {
            cond: Cond::Zero,
            a: Reg(1),
            b: Reg(9),
            target: 4,
        };
        assert_eq!(b.reads(), vec![Reg(1)], "Zero condition ignores b");
        assert_eq!(b.target(), Some(4));
        assert_eq!(Instr::Ret.target(), None);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(1), hash64(2));
        // Low bits should differ for consecutive keys (bucket spreading).
        let buckets: std::collections::HashSet<u64> = (0..64).map(|k| hash64(k) % 64).collect();
        assert!(
            buckets.len() > 32,
            "expected decent spread, got {}",
            buckets.len()
        );
    }
}
