//! External functions and the GOT image.
//!
//! Everything an injected jam reaches outside its own code and the message sections
//! goes through the GOT: the jam executes `CallExtern { slot, .. }`, the slot indexes
//! the *GOT image* that travelled with (or was patched into) the message, and the
//! resolved entry names a function registered on the receiver by a ried. This module
//! provides the receiver-side half: the [`ExternTable`] of callable functions and the
//! [`GotImage`] of resolved slots.

use std::sync::Arc;

use twochains_memsim::{AccessKind, MemoryBus, SimTime};

use crate::memory::JamSpace;

/// Context handed to extern functions: the jam's address space plus the memory bus so
/// receiver-side work (hash-table probes, copies into the heap) is charged like any
/// other memory traffic.
pub struct ExternCtx<'a> {
    /// The address space of the executing jam (exclusive or per-shard view).
    pub space: &'a mut dyn JamSpace,
    /// The memory hierarchy to charge accesses against.
    pub bus: &'a mut dyn MemoryBus,
    /// Core the receiver thread runs on.
    pub core: usize,
    /// Accumulated extra time charged by extern functions during this call.
    pub elapsed: SimTime,
}

impl<'a> ExternCtx<'a> {
    /// Read a u64 at `addr`, charging the bus.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, String> {
        self.elapsed += self.bus.access(self.core, addr, 8, AccessKind::Read);
        self.space.read_scalar(addr, 8).map_err(|e| e.to_string())
    }

    /// Write a u64 at `addr`, charging the bus.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), String> {
        self.elapsed += self.bus.access(self.core, addr, 8, AccessKind::Write);
        self.space
            .write_scalar(addr, value, 8)
            .map_err(|e| e.to_string())
    }

    /// Copy `len` bytes from `src` to `dst`, charging the bus for both sides.
    pub fn memcpy(&mut self, dst: u64, src: u64, len: usize) -> Result<(), String> {
        if len == 0 {
            return Ok(());
        }
        self.elapsed += self.bus.access(self.core, src, len, AccessKind::Read);
        self.elapsed += self.bus.access(self.core, dst, len, AccessKind::Write);
        self.space.copy(dst, src, len).map_err(|e| e.to_string())
    }

    /// Charge extra computation time (for extern functions that model non-memory work).
    pub fn charge(&mut self, t: SimTime) {
        self.elapsed += t;
    }
}

/// An extern function callable from jam bytecode.
pub type ExternFn = Arc<dyn Fn(&mut ExternCtx<'_>, &[u64]) -> Result<u64, String> + Send + Sync>;

/// A reference stored in a GOT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExternRef {
    /// Resolved to an index into the receiver's [`ExternTable`].
    Resolved(u32),
    /// Resolved to a data address in the jam's address space (GOT entries can also
    /// name data objects, e.g. a ried-exported table header).
    Data(u64),
    /// Not resolved — calling through it is an error (mirrors a missing symbol).
    Unresolved,
}

/// The per-message table of resolved GOT slots (the paper's `GOTP` section).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GotImage {
    slots: Vec<ExternRef>,
}

impl GotImage {
    /// An image with `n` unresolved slots.
    pub fn with_slots(n: usize) -> Self {
        GotImage {
            slots: vec![ExternRef::Unresolved; n],
        }
    }

    /// Build directly from resolved references.
    pub fn from_refs(slots: Vec<ExternRef>) -> Self {
        GotImage { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Set a slot.
    pub fn set(&mut self, slot: usize, r: ExternRef) {
        if slot >= self.slots.len() {
            self.slots.resize(slot + 1, ExternRef::Unresolved);
        }
        self.slots[slot] = r;
    }

    /// Get a slot.
    pub fn get(&self, slot: usize) -> ExternRef {
        self.slots
            .get(slot)
            .copied()
            .unwrap_or(ExternRef::Unresolved)
    }

    /// Whether every slot is resolved.
    pub fn fully_resolved(&self) -> bool {
        self.slots
            .iter()
            .all(|s| !matches!(s, ExternRef::Unresolved))
    }

    /// Serialize to the wire format carried in the message frame (8 bytes per slot:
    /// a tag byte + 7 bytes of payload, little endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.slots.len() * 8);
        for s in &self.slots {
            match *s {
                ExternRef::Resolved(idx) => {
                    out.push(1);
                    out.extend_from_slice(&(idx as u64).to_le_bytes()[..7]);
                }
                ExternRef::Data(addr) => {
                    out.push(2);
                    out.extend_from_slice(&addr.to_le_bytes()[..7]);
                }
                ExternRef::Unresolved => {
                    out.push(0);
                    out.extend_from_slice(&[0u8; 7]);
                }
            }
        }
        out
    }

    /// Deserialize from the wire format. Returns `None` if the length is not a
    /// multiple of 8 or a tag is unknown.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let mut slots = Vec::with_capacity(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            let mut val = [0u8; 8];
            val[..7].copy_from_slice(&chunk[1..]);
            let v = u64::from_le_bytes(val);
            slots.push(match chunk[0] {
                0 => ExternRef::Unresolved,
                1 => ExternRef::Resolved(v as u32),
                2 => ExternRef::Data(v),
                _ => return None,
            });
        }
        Some(GotImage { slots })
    }
}

/// The receiver-side table of callable extern functions, populated by loaded rieds.
#[derive(Clone, Default)]
pub struct ExternTable {
    funcs: Vec<(String, ExternFn)>,
}

impl std::fmt::Debug for ExternTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternTable")
            .field(
                "functions",
                &self
                    .funcs
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ExternTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function under `name`, returning its index. Re-registering a name
    /// replaces the previous binding (library reload semantics) and keeps the index.
    pub fn register(&mut self, name: &str, f: ExternFn) -> u32 {
        if let Some(idx) = self.index_of(name) {
            self.funcs[idx as usize].1 = f;
            idx
        } else {
            self.funcs.push((name.to_string(), f));
            (self.funcs.len() - 1) as u32
        }
    }

    /// Find a function's index by name.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Names of registered functions, in index order.
    pub fn names(&self) -> Vec<&str> {
        self.funcs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Call function `index` with `args`.
    pub fn call(&self, index: u32, ctx: &mut ExternCtx<'_>, args: &[u64]) -> Result<u64, String> {
        let (_, f) = self
            .funcs
            .get(index as usize)
            .ok_or_else(|| format!("extern index {index} out of range"))?;
        f(ctx, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{AddressSpace, Segment, SegmentKind};
    use twochains_memsim::hierarchy::FlatMemory;

    fn ctx_parts() -> (AddressSpace, FlatMemory) {
        let mut space = AddressSpace::new();
        space
            .map(Segment::new(
                "heap",
                0x1000,
                vec![0; 256],
                true,
                SegmentKind::Heap,
            ))
            .unwrap();
        (space, FlatMemory::free())
    }

    #[test]
    fn register_and_call() {
        let mut table = ExternTable::new();
        let idx = table.register("add_one", Arc::new(|_ctx, args| Ok(args[0] + 1)));
        assert_eq!(table.index_of("add_one"), Some(idx));
        let (mut space, mut bus) = ctx_parts();
        let mut ctx = ExternCtx {
            space: &mut space,
            bus: &mut bus,
            core: 0,
            elapsed: SimTime::ZERO,
        };
        assert_eq!(table.call(idx, &mut ctx, &[41]).unwrap(), 42);
        assert!(table.call(99, &mut ctx, &[]).is_err());
    }

    #[test]
    fn reregistering_keeps_index() {
        let mut table = ExternTable::new();
        let a = table.register("f", Arc::new(|_, _| Ok(1)));
        let _b = table.register("g", Arc::new(|_, _| Ok(2)));
        let a2 = table.register("f", Arc::new(|_, _| Ok(10)));
        assert_eq!(
            a, a2,
            "reload keeps the index so existing GOT images stay valid"
        );
        assert_eq!(table.len(), 2);
        let (mut space, mut bus) = ctx_parts();
        let mut ctx = ExternCtx {
            space: &mut space,
            bus: &mut bus,
            core: 0,
            elapsed: SimTime::ZERO,
        };
        assert_eq!(
            table.call(a, &mut ctx, &[]).unwrap(),
            10,
            "new binding is used"
        );
    }

    #[test]
    fn extern_ctx_helpers_touch_memory_and_charge_bus() {
        let (mut space, mut bus) = ctx_parts();
        bus.per_access = SimTime::from_ns(5);
        let mut ctx = ExternCtx {
            space: &mut space,
            bus: &mut bus,
            core: 0,
            elapsed: SimTime::ZERO,
        };
        ctx.write_u64(0x1000, 777).unwrap();
        assert_eq!(ctx.read_u64(0x1000).unwrap(), 777);
        ctx.memcpy(0x1040, 0x1000, 8).unwrap();
        assert_eq!(ctx.read_u64(0x1040).unwrap(), 777);
        assert!(
            ctx.elapsed >= SimTime::from_ns(5 * 5),
            "bus charges accumulate"
        );
        ctx.charge(SimTime::from_ns(100));
        assert!(ctx.elapsed >= SimTime::from_ns(125));
        assert!(ctx.read_u64(0xdead_0000).is_err());
    }

    #[test]
    fn got_image_slots_and_resolution() {
        let mut got = GotImage::with_slots(2);
        assert!(!got.fully_resolved());
        got.set(0, ExternRef::Resolved(3));
        got.set(1, ExternRef::Data(0xBEEF));
        assert!(got.fully_resolved());
        assert_eq!(got.get(0), ExternRef::Resolved(3));
        assert_eq!(
            got.get(7),
            ExternRef::Unresolved,
            "out of range reads as unresolved"
        );
        got.set(4, ExternRef::Resolved(1));
        assert_eq!(got.len(), 5, "setting past the end grows the image");
    }

    #[test]
    fn got_image_wire_roundtrip() {
        let got = GotImage::from_refs(vec![
            ExternRef::Resolved(7),
            ExternRef::Unresolved,
            ExternRef::Data(0x0001_0000_2000),
        ]);
        let bytes = got.to_bytes();
        assert_eq!(bytes.len(), 24);
        let back = GotImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, got);
        assert!(
            GotImage::from_bytes(&bytes[..23]).is_none(),
            "length must be multiple of 8"
        );
        let mut bad = bytes.clone();
        bad[0] = 9;
        assert!(GotImage::from_bytes(&bad).is_none(), "unknown tag rejected");
    }

    #[test]
    fn table_names_in_index_order() {
        let mut t = ExternTable::new();
        t.register("a", Arc::new(|_, _| Ok(0)));
        t.register("b", Arc::new(|_, _| Ok(0)));
        assert_eq!(t.names(), vec!["a", "b"]);
        assert!(!t.is_empty());
    }
}
