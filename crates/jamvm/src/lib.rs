//! # twochains-jamvm
//!
//! A small, position-independent register bytecode and interpreter that stands in for
//! the native AArch64 function binaries the paper injects over the network.
//!
//! ## Why a VM instead of native code
//!
//! The paper compiles active-message functions ("jams") with `-fPIC -fno-plt`,
//! statically rewrites every GOT access to indirect through a pointer stored at a
//! known PC-relative location, ships the raw machine code in the message, and jumps
//! into it on arrival. Executing arbitrary native bytes received from the network is
//! exactly the part of the design this reproduction cannot (and should not) do
//! natively; the jam VM preserves every property the mechanism depends on:
//!
//! * **Position independence** — jam bytecode has no absolute addresses; all control
//!   flow is relative and all data is reached through registers set up from the
//!   message (ARGS/USR sections) or through the GOT.
//! * **GOT-indirect external references** — the only way a jam reaches code or data
//!   that lives on the receiver (a ried export, `memcpy`, a hash-table probe) is
//!   [`isa::Instr::CallExtern`] through a *GOT slot index*; the slot table travels
//!   with (or is patched into) the message exactly as in the paper.
//! * **A code blob measured in bytes** — [`encode`] produces the `.text` bytes whose
//!   size rides in the frame and shows up in the latency/bandwidth trade-off of
//!   Figs. 7–8 (the Indirect Put jam is 1408 bytes when shipped).
//! * **Real memory traffic** — every load/store the jam performs goes through a
//!   [`twochains_memsim::MemoryBus`], so the execution cost depends on whether the
//!   message was stashed into the LLC or landed in DRAM.
//!
//! Two execution engines share those properties: the interpreter
//! ([`vm::Vm::execute`]) re-decodes the program every run — the right model for a
//! cold first execution — and the resolved executor
//! ([`vm::Vm::execute_resolved`]) runs a [`resolved`] image lowered once by
//! [`resolve`]: flat pre-decoded operands, GOT indirections turned into direct
//! extern references (with lazy errors preserved), fused superinstructions and
//! block-batched instruction fetch. The two are pinned observationally equal by
//! differential tests; see the [`resolved`] module docs for the lowering, timing
//! and invalidation contracts.
//!
//! The crate is deliberately free of any dependency on the fabric or the runtime: it
//! knows nothing about messages, only about executing verified bytecode against an
//! [`memory::AddressSpace`] and an [`externs::ExternTable`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod encode;
pub mod externs;
pub mod isa;
pub mod memory;
pub mod resolved;
pub mod verify;
pub mod vm;

pub use asm::Assembler;
pub use encode::{decode_program, encode_program, encoded_size};
pub use externs::{ExternRef, ExternTable, GotImage};
pub use isa::{hash64, hash64_bytes, Instr, Reg};
pub use memory::{AddressSpace, JamSpace, Segment, SegmentKind, SegmentMeta, ShardSpace};
pub use resolved::{resolve, ResolvedOp, ResolvedProgram, RESOLVED_OP_BYTES};
pub use verify::{verify, VerifyError};
pub use vm::{ExecError, ExecStats, Vm, VmConfig};
