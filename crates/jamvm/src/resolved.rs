//! The resolved IR: a lowered, directly-executable form of a decoded program.
//!
//! The interpreter in [`crate::vm`] re-decodes operands, chases GOT indirections
//! and charges the memory bus one instruction-fetch per retired instruction on
//! every execution. That is the right model for the *first* execution of an
//! injected program — but the injection cache already proves most executions are
//! warm re-runs of bytes the receiver has seen before. Dynamic binary
//! instrumentation systems answer the same problem by translating once into a
//! code cache and re-executing the lowered form; [`resolve`] is that translation
//! and [`Vm::execute_resolved`] is the threaded re-execution.
//!
//! ## What lowering does
//!
//! * **Flat fixed-width operands** — every [`ResolvedOp`] carries pre-decoded
//!   register indices and immediates; the executor never re-inspects encoded
//!   operand forms. The resolved image is modelled at a fixed
//!   [`RESOLVED_OP_BYTES`] per op for fetch charging.
//! * **GOT indirections resolved** — `CallExtern { slot }` becomes
//!   [`ResolvedOp::CallDirect`] holding the extern-table index the GOT slot
//!   resolved to. Slots that are unresolved or bound to data lower to
//!   [`ResolvedOp::CallUnresolved`] / [`ResolvedOp::CallNotCallable`], which
//!   raise the *same error the interpreter would* — but only if actually
//!   reached, preserving lazy-error semantics.
//! * **Superinstruction fusion** — hot adjacent pairs fuse into one op slot:
//!   load+ALU ([`ResolvedOp::LoadAlu`]), ALU+dependent-branch
//!   ([`ResolvedOp::AluBranch`] / [`ResolvedOp::AluImmBranch`], the `sub; jnz`
//!   loop back-edge idiom) and mov+mov ([`ResolvedOp::MovMov`], the argument
//!   shuffle prologue idiom). A pair is only fused when its second half is not
//!   a branch target, so every control-transfer destination stays an op
//!   boundary. Fused ops retire both halves (two instructions, two issue
//!   charges, fuel re-checked between the halves) so functional and accounting
//!   behaviour match the interpreter exactly.
//! * **Block-batched fetch** — instruction-fetch is charged once per
//!   *straight-line block* entry (one bus access spanning the block's bytes in
//!   the resolved image) instead of once per instruction. Block leaders are the
//!   entry op, every branch target and every op that follows a control-flow op.
//!
//! ## Timing contract
//!
//! Compute and data-memory time are charged identically to the interpreter.
//! Fetch time differs by construction: the resolved executor issues one fetch
//! access per block *entry* where the interpreter issues one per *instruction*,
//! so on a uniform-cost bus `resolved.total_time()` is bounded above by the
//! interpreter's total and below by the interpreter's compute + memory time.
//! This is the documented block-batching tolerance the differential tests pin.
//!
//! ## Invalidation contract
//!
//! A [`ResolvedProgram`] bakes in one specific GOT image. It is only valid for
//! re-execution while (a) the code bytes still hash to the cache key it is
//! stored under and (b) the GOT image it was lowered against is *the same
//! image* (pointer identity in the runtime's cache). The runtime's injection
//! cache enforces both: the resolved image rides in a second-level cache keyed
//! by `(elem_id, code_digest, code_len)`, a hit additionally requires the
//! cached GOT `Arc` to be the one the current message resolved to, and any
//! package reinstall or namespace change purges the cache wholesale.

use twochains_memsim::{AccessKind, MemoryBus, SimTime};

use crate::externs::{ExternCtx, ExternRef, ExternTable, GotImage};
use crate::isa::{hash64, AluOp, Cond, Instr, Width, NUM_REGS};
use crate::memory::JamSpace;
use crate::vm::{alu, ExecError, ExecStats, Vm, VmConfig};

/// Modelled size of one resolved op in the receiver's code cache. The resolved
/// image is wider than the wire encoding (operands are flat, not packed) but
/// every op is the same width, which is what lets fetch spans be computed per
/// block instead of per instruction.
pub const RESOLVED_OP_BYTES: usize = 16;

/// One op of the resolved IR. Operands are pre-decoded register indices and
/// immediates; calls carry the extern-table index the GOT slot resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedOp {
    /// `dst = imm`.
    LoadImm {
        /// Destination register index.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst = a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// `dst = src op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// Source operand register.
        src: u8,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = *(addr + offset)`.
    Load {
        /// Access width.
        width: Width,
        /// Destination register index.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset added to the base.
        offset: u32,
    },
    /// `*(addr + offset) = src`.
    Store {
        /// Access width.
        width: Width,
        /// Source register index.
        src: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset added to the base.
        offset: u32,
    },
    /// Copy `len` bytes from `src` to `dst` (all register-indirect).
    Memcpy {
        /// Destination address register.
        dst: u8,
        /// Source address register.
        src: u8,
        /// Length register.
        len: u8,
    },
    /// Unconditional jump to a resolved op index.
    Jump {
        /// Resolved-op target index.
        target: u32,
    },
    /// Conditional branch to a resolved op index.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        a: u8,
        /// Second compared register.
        b: u8,
        /// Resolved-op target index.
        target: u32,
    },
    /// A `CallExtern` whose GOT slot resolved to a callable extern.
    CallDirect {
        /// Index into the receiver's extern table.
        index: u32,
        /// Number of argument registers (`r0..rn`).
        nargs: u8,
    },
    /// A `CallExtern` through an unresolved GOT slot: raises
    /// [`ExecError::UnresolvedGot`] *if reached* (lazy, like the interpreter).
    CallUnresolved {
        /// The offending slot, echoed in the error.
        slot: u16,
    },
    /// A `CallExtern` through a data GOT slot: raises
    /// [`ExecError::NotCallable`] *if reached*.
    CallNotCallable {
        /// The offending slot, echoed in the error.
        slot: u16,
    },
    /// `dst = hash64(src)`.
    Hash {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// No operation.
    Nop,
    /// Return, with the result in `r0`.
    Ret,
    /// Superinstruction: load followed by an ALU op that reads the loaded value.
    LoadAlu {
        /// Load access width.
        width: Width,
        /// Load destination register.
        ldst: u8,
        /// Load address base register.
        addr: u8,
        /// Load byte offset.
        offset: u32,
        /// ALU operation.
        op: AluOp,
        /// ALU destination register.
        adst: u8,
        /// ALU first operand register.
        a: u8,
        /// ALU second operand register.
        b: u8,
    },
    /// Superinstruction: ALU op followed by a branch that reads its result
    /// (the compare-and-branch idiom).
    AluBranch {
        /// ALU operation.
        op: AluOp,
        /// ALU destination register.
        dst: u8,
        /// ALU first operand register.
        a: u8,
        /// ALU second operand register.
        b: u8,
        /// Branch condition.
        cond: Cond,
        /// Branch first compared register.
        ba: u8,
        /// Branch second compared register.
        bb: u8,
        /// Resolved-op target index.
        target: u32,
    },
    /// Superinstruction: immediate ALU op followed by a dependent branch
    /// (the `sub rN, 1; jnz rN` loop back-edge).
    AluImmBranch {
        /// ALU operation.
        op: AluOp,
        /// ALU destination register.
        dst: u8,
        /// ALU source register.
        src: u8,
        /// ALU immediate operand.
        imm: u64,
        /// Branch condition.
        cond: Cond,
        /// Branch first compared register.
        ba: u8,
        /// Branch second compared register.
        bb: u8,
        /// Resolved-op target index.
        target: u32,
    },
    /// Superinstruction: two adjacent register moves (argument-shuffle idiom).
    MovMov {
        /// First move destination.
        d1: u8,
        /// First move source.
        s1: u8,
        /// Second move destination.
        d2: u8,
        /// Second move source.
        s2: u8,
    },
}

impl ResolvedOp {
    /// Whether the op ends a straight-line block (its successor, if any, starts
    /// a new one). Lazy call errors terminate execution when reached, so they
    /// also close their block.
    fn ends_block(&self) -> bool {
        matches!(
            self,
            ResolvedOp::Jump { .. }
                | ResolvedOp::Branch { .. }
                | ResolvedOp::AluBranch { .. }
                | ResolvedOp::AluImmBranch { .. }
                | ResolvedOp::Ret
                | ResolvedOp::CallUnresolved { .. }
                | ResolvedOp::CallNotCallable { .. }
        )
    }

    /// Whether the op is a fused superinstruction (retires two instructions).
    fn is_fused(&self) -> bool {
        matches!(
            self,
            ResolvedOp::LoadAlu { .. }
                | ResolvedOp::AluBranch { .. }
                | ResolvedOp::AluImmBranch { .. }
                | ResolvedOp::MovMov { .. }
        )
    }
}

/// A program lowered by [`resolve`]: the op vector plus the metadata the
/// executor needs to charge block-batched fetches and to report errors in
/// terms of *original* program counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedProgram {
    ops: Vec<ResolvedOp>,
    /// Per-op: number of ops in the straight-line block this op leads, or 0 if
    /// the op is not a block leader.
    block_len: Vec<u32>,
    /// Length of the original program, for reconstructing out-of-bounds pcs.
    orig_len: u32,
}

impl ResolvedProgram {
    /// Number of resolved ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program lowered to zero ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of fused superinstructions in the image (static count).
    pub fn superinstruction_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_fused()).count()
    }

    /// Modelled byte size of the resolved image ([`RESOLVED_OP_BYTES`] per op)
    /// — the span the runtime installs at the image's code base and the
    /// executor charges fetches against.
    pub fn image_bytes(&self) -> usize {
        self.ops.len() * RESOLVED_OP_BYTES
    }

    /// Reconstruct the original pc for a resolved pc that left the program.
    /// Out-of-range control-flow targets are mapped past the end of the op
    /// vector preserving their distance beyond the original program's end, so
    /// this inversion is exact.
    fn oob_orig_pc(&self, rpc: usize) -> usize {
        self.orig_len as usize + (rpc - self.ops.len())
    }
}

/// Map an original branch target to a resolved op index. In-bounds targets use
/// the pc map; out-of-bounds targets (possible in unverified programs — the
/// interpreter faults on them lazily) are mapped past the end of the resolved
/// op vector, preserving their distance beyond the original end so the
/// out-of-bounds error can name the original pc.
fn map_target(target: u32, pc_map: &[u32], orig_len: usize, resolved_len: usize) -> u32 {
    if (target as usize) < orig_len {
        pc_map[target as usize]
    } else {
        (resolved_len + (target as usize - orig_len)) as u32
    }
}

/// Lower a decoded program against a GOT image into a [`ResolvedProgram`].
///
/// Never fails: GOT slots that would fault lower into lazy-error ops, and
/// out-of-bounds control-flow targets are preserved as out-of-bounds resolved
/// targets. The result is only valid for the exact `(program, got)` pair it
/// was lowered from — see the module docs for the invalidation contract.
pub fn resolve(program: &[Instr], got: &GotImage) -> ResolvedProgram {
    // Pass 1: collect branch targets — a pair whose second half is a target
    // must not fuse, so every control transfer lands on an op boundary.
    let mut is_target = vec![false; program.len()];
    for instr in program {
        if let Some(t) = instr.target() {
            if (t as usize) < program.len() {
                is_target[t as usize] = true;
            }
        }
    }

    // Pass 2: decide fusion greedily left-to-right and build the pc map
    // (original pc -> resolved op index).
    let mut pc_map = vec![0u32; program.len()];
    let mut fused_with_next = vec![false; program.len()];
    let mut ridx = 0u32;
    let mut i = 0usize;
    while i < program.len() {
        pc_map[i] = ridx;
        let fuse = program
            .get(i + 1)
            .filter(|_| !is_target[i + 1])
            .is_some_and(|next| can_fuse(&program[i], next));
        if fuse {
            fused_with_next[i] = true;
            pc_map[i + 1] = ridx;
            i += 2;
        } else {
            i += 1;
        }
        ridx += 1;
    }
    let resolved_len = ridx as usize;

    // Pass 3: lower, remapping control-flow targets through the pc map.
    let mut ops = Vec::with_capacity(resolved_len);
    let remap = |t: u32| map_target(t, &pc_map, program.len(), resolved_len);
    let mut i = 0usize;
    while i < program.len() {
        if fused_with_next[i] {
            ops.push(lower_fused(&program[i], &program[i + 1], &remap));
            i += 2;
        } else {
            ops.push(lower_one(&program[i], got, &remap));
            i += 1;
        }
    }
    debug_assert_eq!(ops.len(), resolved_len);

    // Pass 4: block leaders and per-leader block lengths. Leaders are the
    // entry op, every in-bounds control-flow target, and every op following a
    // block-ending op.
    let mut leader = vec![false; ops.len()];
    if !ops.is_empty() {
        leader[0] = true;
    }
    for (idx, op) in ops.iter().enumerate() {
        let target = match *op {
            ResolvedOp::Jump { target }
            | ResolvedOp::Branch { target, .. }
            | ResolvedOp::AluBranch { target, .. }
            | ResolvedOp::AluImmBranch { target, .. } => Some(target),
            _ => None,
        };
        if let Some(t) = target {
            if (t as usize) < ops.len() {
                leader[t as usize] = true;
            }
        }
        if op.ends_block() && idx + 1 < ops.len() {
            leader[idx + 1] = true;
        }
    }
    let mut block_len = vec![0u32; ops.len()];
    let mut idx = 0usize;
    while idx < ops.len() {
        debug_assert!(leader[idx]);
        let mut end = idx + 1;
        while end < ops.len() && !leader[end] {
            end += 1;
        }
        block_len[idx] = (end - idx) as u32;
        idx = end;
    }

    ResolvedProgram {
        ops,
        block_len,
        orig_len: program.len() as u32,
    }
}

/// Whether the adjacent pair `(a, b)` fuses into a superinstruction. The
/// caller has already checked that `b` is not a branch target.
fn can_fuse(a: &Instr, b: &Instr) -> bool {
    match (a, b) {
        // Load feeding an ALU op.
        (Instr::Load { dst, .. }, Instr::Alu { a, b, .. }) => *dst == *a || *dst == *b,
        // ALU result feeding a branch (compare-and-branch).
        (Instr::Alu { dst, .. }, Instr::Branch { a, b, .. })
        | (Instr::AluImm { dst, .. }, Instr::Branch { a, b, .. }) => *dst == *a || *dst == *b,
        // Adjacent register moves (argument shuffles).
        (Instr::Mov { .. }, Instr::Mov { .. }) => true,
        _ => false,
    }
}

fn lower_fused(a: &Instr, b: &Instr, remap: &dyn Fn(u32) -> u32) -> ResolvedOp {
    match (a, b) {
        (
            Instr::Load {
                width,
                dst,
                addr,
                offset,
            },
            Instr::Alu {
                op,
                dst: adst,
                a,
                b,
            },
        ) => ResolvedOp::LoadAlu {
            width: *width,
            ldst: dst.0,
            addr: addr.0,
            offset: *offset,
            op: *op,
            adst: adst.0,
            a: a.0,
            b: b.0,
        },
        (
            Instr::Alu { op, dst, a, b },
            Instr::Branch {
                cond,
                a: ba,
                b: bb,
                target,
            },
        ) => ResolvedOp::AluBranch {
            op: *op,
            dst: dst.0,
            a: a.0,
            b: b.0,
            cond: *cond,
            ba: ba.0,
            bb: bb.0,
            target: remap(*target),
        },
        (
            Instr::AluImm { op, dst, src, imm },
            Instr::Branch {
                cond,
                a: ba,
                b: bb,
                target,
            },
        ) => ResolvedOp::AluImmBranch {
            op: *op,
            dst: dst.0,
            src: src.0,
            imm: *imm,
            cond: *cond,
            ba: ba.0,
            bb: bb.0,
            target: remap(*target),
        },
        (Instr::Mov { dst: d1, src: s1 }, Instr::Mov { dst: d2, src: s2 }) => ResolvedOp::MovMov {
            d1: d1.0,
            s1: s1.0,
            d2: d2.0,
            s2: s2.0,
        },
        _ => unreachable!("lower_fused called on a pair can_fuse rejected"),
    }
}

fn lower_one(instr: &Instr, got: &GotImage, remap: &dyn Fn(u32) -> u32) -> ResolvedOp {
    match *instr {
        Instr::LoadImm { dst, imm } => ResolvedOp::LoadImm { dst: dst.0, imm },
        Instr::Mov { dst, src } => ResolvedOp::Mov {
            dst: dst.0,
            src: src.0,
        },
        Instr::Alu { op, dst, a, b } => ResolvedOp::Alu {
            op,
            dst: dst.0,
            a: a.0,
            b: b.0,
        },
        Instr::AluImm { op, dst, src, imm } => ResolvedOp::AluImm {
            op,
            dst: dst.0,
            src: src.0,
            imm,
        },
        Instr::Load {
            width,
            dst,
            addr,
            offset,
        } => ResolvedOp::Load {
            width,
            dst: dst.0,
            addr: addr.0,
            offset,
        },
        Instr::Store {
            width,
            src,
            addr,
            offset,
        } => ResolvedOp::Store {
            width,
            src: src.0,
            addr: addr.0,
            offset,
        },
        Instr::Memcpy { dst, src, len } => ResolvedOp::Memcpy {
            dst: dst.0,
            src: src.0,
            len: len.0,
        },
        Instr::Jump { target } => ResolvedOp::Jump {
            target: remap(target),
        },
        Instr::Branch { cond, a, b, target } => ResolvedOp::Branch {
            cond,
            a: a.0,
            b: b.0,
            target: remap(target),
        },
        Instr::CallExtern { slot, nargs } => match got.get(slot as usize) {
            ExternRef::Resolved(index) => ResolvedOp::CallDirect { index, nargs },
            ExternRef::Unresolved => ResolvedOp::CallUnresolved { slot },
            ExternRef::Data(_) => ResolvedOp::CallNotCallable { slot },
        },
        Instr::Hash { dst, src } => ResolvedOp::Hash {
            dst: dst.0,
            src: src.0,
        },
        Instr::Nop => ResolvedOp::Nop,
        Instr::Ret => ResolvedOp::Ret,
    }
}

fn branch_taken(cond: Cond, x: u64, y: u64) -> bool {
    match cond {
        Cond::Zero => x == 0,
        Cond::NotZero => x != 0,
        Cond::Less => x < y,
        Cond::GreaterEq => x >= y,
    }
}

impl Vm {
    /// Execute a resolved image to completion.
    ///
    /// Functionally equivalent to running [`Vm::execute`] over the program the
    /// image was lowered from with the GOT it was lowered against: same
    /// results, same memory effects, same errors (including lazy GOT-call
    /// errors and out-of-bounds pcs reported in *original* pc terms), same
    /// fuel accounting. Compute and data-memory time are charged identically;
    /// fetch time is charged per straight-line-block entry against
    /// `cfg.code_base` (the resolved image's install address) — see the module
    /// docs for the tolerance contract.
    pub fn execute_resolved(
        resolved: &ResolvedProgram,
        externs: &ExternTable,
        space: &mut dyn JamSpace,
        bus: &mut dyn MemoryBus,
        cfg: &VmConfig,
    ) -> Result<ExecStats, ExecError> {
        let mut regs = [0u64; NUM_REGS];
        regs[..cfg.entry_regs.len()].copy_from_slice(&cfg.entry_regs);
        let mut pc = 0usize;
        let mut stats = ExecStats {
            result: 0,
            instructions: 0,
            extern_calls: 0,
            superinstructions: 0,
            compute_time: SimTime::ZERO,
            memory_time: SimTime::ZERO,
            fetch_time: SimTime::ZERO,
        };
        let cycle = SimTime::from_cycles(1, cfg.freq_ghz);
        let issue_cost = cycle * (1.0 / cfg.ipc);
        let ops = &resolved.ops;

        macro_rules! load {
            ($width:expr, $dst:expr, $addr:expr, $offset:expr) => {{
                let a = regs[$addr as usize].wrapping_add($offset as u64);
                stats.memory_time += bus.access(cfg.core, a, $width.bytes(), AccessKind::Read);
                regs[$dst as usize] = space
                    .read_scalar(a, $width.bytes())
                    .map_err(|e| ExecError::Fault(e.to_string()))?;
            }};
        }

        loop {
            if stats.instructions >= cfg.fuel {
                return Err(ExecError::FuelExhausted);
            }
            let op = match ops.get(pc) {
                Some(op) => *op,
                None => {
                    return Err(ExecError::PcOutOfBounds {
                        pc: resolved.oob_orig_pc(pc),
                    })
                }
            };
            stats.instructions += 1;
            stats.compute_time += issue_cost;
            if cfg.code_base != 0 {
                let span = resolved.block_len[pc];
                if span > 0 {
                    stats.fetch_time += bus.access(
                        cfg.core,
                        cfg.code_base + (pc * RESOLVED_OP_BYTES) as u64,
                        span as usize * RESOLVED_OP_BYTES,
                        AccessKind::Fetch,
                    );
                }
            }
            let mut next_pc = pc + 1;
            match op {
                ResolvedOp::LoadImm { dst, imm } => regs[dst as usize] = imm,
                ResolvedOp::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
                ResolvedOp::Alu { op, dst, a, b } => {
                    regs[dst as usize] = alu(op, regs[a as usize], regs[b as usize]);
                }
                ResolvedOp::AluImm { op, dst, src, imm } => {
                    regs[dst as usize] = alu(op, regs[src as usize], imm);
                }
                ResolvedOp::Load {
                    width,
                    dst,
                    addr,
                    offset,
                } => load!(width, dst, addr, offset),
                ResolvedOp::Store {
                    width,
                    src,
                    addr,
                    offset,
                } => {
                    let a = regs[addr as usize].wrapping_add(offset as u64);
                    stats.memory_time += bus.access(cfg.core, a, width.bytes(), AccessKind::Write);
                    space
                        .write_scalar(a, regs[src as usize], width.bytes())
                        .map_err(|e| ExecError::Fault(e.to_string()))?;
                }
                ResolvedOp::Memcpy { dst, src, len } => {
                    let (d, s, n) = (
                        regs[dst as usize],
                        regs[src as usize],
                        regs[len as usize] as usize,
                    );
                    if n > 0 {
                        stats.memory_time += bus.access(cfg.core, s, n, AccessKind::Read);
                        stats.memory_time += bus.access(cfg.core, d, n, AccessKind::Write);
                        space
                            .copy(d, s, n)
                            .map_err(|e| ExecError::Fault(e.to_string()))?;
                    }
                }
                ResolvedOp::Jump { target } => next_pc = target as usize,
                ResolvedOp::Branch { cond, a, b, target } => {
                    if branch_taken(cond, regs[a as usize], regs[b as usize]) {
                        next_pc = target as usize;
                    }
                }
                ResolvedOp::CallDirect { index, nargs } => {
                    stats.extern_calls += 1;
                    stats.compute_time += cfg.extern_call_overhead;
                    let args: Vec<u64> = regs[..nargs as usize].to_vec();
                    let mut ctx = ExternCtx {
                        space,
                        bus,
                        core: cfg.core,
                        elapsed: SimTime::ZERO,
                    };
                    let r = externs
                        .call(index, &mut ctx, &args)
                        .map_err(ExecError::ExternFailed)?;
                    stats.memory_time += ctx.elapsed;
                    regs[0] = r;
                }
                ResolvedOp::CallUnresolved { slot } => {
                    stats.extern_calls += 1;
                    stats.compute_time += cfg.extern_call_overhead;
                    return Err(ExecError::UnresolvedGot { slot });
                }
                ResolvedOp::CallNotCallable { slot } => {
                    stats.extern_calls += 1;
                    stats.compute_time += cfg.extern_call_overhead;
                    return Err(ExecError::NotCallable { slot });
                }
                ResolvedOp::Hash { dst, src } => regs[dst as usize] = hash64(regs[src as usize]),
                ResolvedOp::Nop => {}
                ResolvedOp::Ret => {
                    stats.result = regs[0];
                    return Ok(stats);
                }
                ResolvedOp::LoadAlu {
                    width,
                    ldst,
                    addr,
                    offset,
                    op,
                    adst,
                    a,
                    b,
                } => {
                    stats.superinstructions += 1;
                    load!(width, ldst, addr, offset);
                    if stats.instructions >= cfg.fuel {
                        return Err(ExecError::FuelExhausted);
                    }
                    stats.instructions += 1;
                    stats.compute_time += issue_cost;
                    regs[adst as usize] = alu(op, regs[a as usize], regs[b as usize]);
                }
                ResolvedOp::AluBranch {
                    op,
                    dst,
                    a,
                    b,
                    cond,
                    ba,
                    bb,
                    target,
                } => {
                    stats.superinstructions += 1;
                    regs[dst as usize] = alu(op, regs[a as usize], regs[b as usize]);
                    if stats.instructions >= cfg.fuel {
                        return Err(ExecError::FuelExhausted);
                    }
                    stats.instructions += 1;
                    stats.compute_time += issue_cost;
                    if branch_taken(cond, regs[ba as usize], regs[bb as usize]) {
                        next_pc = target as usize;
                    }
                }
                ResolvedOp::AluImmBranch {
                    op,
                    dst,
                    src,
                    imm,
                    cond,
                    ba,
                    bb,
                    target,
                } => {
                    stats.superinstructions += 1;
                    regs[dst as usize] = alu(op, regs[src as usize], imm);
                    if stats.instructions >= cfg.fuel {
                        return Err(ExecError::FuelExhausted);
                    }
                    stats.instructions += 1;
                    stats.compute_time += issue_cost;
                    if branch_taken(cond, regs[ba as usize], regs[bb as usize]) {
                        next_pc = target as usize;
                    }
                }
                ResolvedOp::MovMov { d1, s1, d2, s2 } => {
                    stats.superinstructions += 1;
                    regs[d1 as usize] = regs[s1 as usize];
                    if stats.instructions >= cfg.fuel {
                        return Err(ExecError::FuelExhausted);
                    }
                    stats.instructions += 1;
                    stats.compute_time += issue_cost;
                    regs[d2 as usize] = regs[s2 as usize];
                }
            }
            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::Reg;
    use crate::memory::{AddressSpace, Segment, SegmentKind};
    use std::sync::Arc;
    use twochains_memsim::hierarchy::FlatMemory;

    fn run_both(
        program: &[Instr],
        got: &GotImage,
        externs: &ExternTable,
    ) -> (
        Result<ExecStats, ExecError>,
        Result<ExecStats, ExecError>,
        ResolvedProgram,
    ) {
        let cfg = VmConfig::default();
        let mut space_a = AddressSpace::new();
        let mut bus_a = FlatMemory::free();
        let interp = Vm::execute(program, got, externs, &mut space_a, &mut bus_a, &cfg);
        let resolved = resolve(program, got);
        let mut space_b = AddressSpace::new();
        let mut bus_b = FlatMemory::free();
        let res = Vm::execute_resolved(&resolved, externs, &mut space_b, &mut bus_b, &cfg);
        (interp, res, resolved)
    }

    #[test]
    fn mov_pairs_fuse_and_match_interpreter() {
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 40)
            .load_imm(Reg(2), 2)
            .mov(Reg(3), Reg(1))
            .mov(Reg(4), Reg(2))
            .add(Reg(0), Reg(3), Reg(4))
            .ret();
        let prog = a.finish().unwrap();
        let (interp, res, resolved) = run_both(&prog, &GotImage::default(), &ExternTable::new());
        assert_eq!(resolved.superinstruction_count(), 1, "mov pair fused");
        let (i, r) = (interp.unwrap(), res.unwrap());
        assert_eq!(r.result, 42);
        assert_eq!(r.result, i.result);
        assert_eq!(r.instructions, i.instructions, "fused halves both retire");
        assert_eq!(r.superinstructions, 1);
        assert_eq!(i.superinstructions, 0);
    }

    #[test]
    fn loop_with_fused_back_edge_matches_interpreter() {
        // The ssum inner-loop idiom: load+add fuses, sub+jnz fuses.
        let mut asm = Assembler::new();
        asm.load_imm(Reg(1), 0x2000)
            .load_imm(Reg(2), 16)
            .load_imm(Reg(0), 0)
            .label("loop")
            .load(Width::B4, Reg(3), Reg(1), 0)
            .add(Reg(0), Reg(0), Reg(3))
            .add_imm(Reg(1), Reg(1), 4)
            .alu_imm(AluOp::Sub, Reg(2), Reg(2), 1)
            .jnz(Reg(2), "loop")
            .ret();
        let prog = asm.finish().unwrap();
        let values: Vec<u8> = (1u32..=16).flat_map(|v| v.to_le_bytes()).collect();
        let seg = Segment::new("usr", 0x2000, values, false, SegmentKind::Payload);

        let cfg = VmConfig::default();
        let mut space_a = AddressSpace::new();
        space_a.map(seg.clone()).unwrap();
        let mut bus_a = FlatMemory::free();
        let got = GotImage::default();
        let externs = ExternTable::new();
        let interp = Vm::execute(&prog, &got, &externs, &mut space_a, &mut bus_a, &cfg).unwrap();

        let resolved = resolve(&prog, &got);
        assert!(
            resolved.superinstruction_count() >= 2,
            "load+add and sub+jnz both fuse: {resolved:?}"
        );
        let mut space_b = AddressSpace::new();
        space_b.map(seg).unwrap();
        let mut bus_b = FlatMemory::free();
        let res =
            Vm::execute_resolved(&resolved, &externs, &mut space_b, &mut bus_b, &cfg).unwrap();
        assert_eq!(res.result, (1..=16u64).sum::<u64>());
        assert_eq!(res.result, interp.result);
        assert_eq!(res.instructions, interp.instructions);
        assert_eq!(res.compute_time, interp.compute_time);
        assert_eq!(res.memory_time, interp.memory_time);
        assert!(res.superinstructions as usize >= 16 * 2);
    }

    #[test]
    fn branch_target_blocks_fusion() {
        // The jump targets the second mov, so the pair must not fuse.
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 7)
            .jump("target")
            .mov(Reg(2), Reg(1))
            .label("target")
            .mov(Reg(0), Reg(1))
            .ret();
        let prog = a.finish().unwrap();
        let (interp, res, resolved) = run_both(&prog, &GotImage::default(), &ExternTable::new());
        assert_eq!(resolved.superinstruction_count(), 0);
        assert_eq!(res.unwrap().result, interp.unwrap().result);
    }

    #[test]
    fn got_calls_lower_to_direct_and_lazy_errors() {
        let mut externs = ExternTable::new();
        let idx = externs.register("id", Arc::new(|_ctx, args: &[u64]| Ok(args[0] + 1)));
        let mut got = GotImage::with_slots(3);
        got.set(0, ExternRef::Resolved(idx));
        got.set(2, ExternRef::Data(0x1234));

        // Slot 0 resolves; the unresolved slot 1 and data slot 2 are never
        // reached, so lowering must not fault eagerly.
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 41)
            .call_extern(0, 1)
            .ret()
            .call_extern(1, 0)
            .call_extern(2, 0);
        let prog = a.finish().unwrap();
        let (interp, res, resolved) = run_both(&prog, &got, &externs);
        assert!(matches!(resolved.ops[1], ResolvedOp::CallDirect { .. }));
        let (i, r) = (interp.unwrap(), res.unwrap());
        assert_eq!(r.result, 42);
        assert_eq!(r.result, i.result);
        assert_eq!(r.extern_calls, 1);

        // Reaching the bad slots raises the interpreter's exact errors.
        let mut a = Assembler::new();
        a.call_extern(1, 0).ret();
        let prog = a.finish().unwrap();
        let (interp, res, _) = run_both(&prog, &got, &externs);
        assert_eq!(res.unwrap_err(), interp.unwrap_err());

        let mut a = Assembler::new();
        a.call_extern(2, 0).ret();
        let prog = a.finish().unwrap();
        let (interp, res, _) = run_both(&prog, &got, &externs);
        assert_eq!(res.unwrap_err(), ExecError::NotCallable { slot: 2 });
        assert!(matches!(interp, Err(ExecError::NotCallable { slot: 2 })));
    }

    #[test]
    fn oob_pc_reported_in_original_terms() {
        // Fall off the end: the fused movs shrink the op vector, but the
        // error must name the original pc (= original length).
        let mut a = Assembler::new();
        a.mov(Reg(1), Reg(2)).mov(Reg(3), Reg(4));
        let prog = a.finish().unwrap();
        let (interp, res, resolved) = run_both(&prog, &GotImage::default(), &ExternTable::new());
        assert_eq!(resolved.len(), 1, "pair fused into one op");
        assert_eq!(interp.unwrap_err(), ExecError::PcOutOfBounds { pc: 2 });
        assert_eq!(res.unwrap_err(), ExecError::PcOutOfBounds { pc: 2 });

        // A jump past the end reports the original target.
        let prog = vec![Instr::Jump { target: 99 }];
        let (interp, res, _) = run_both(&prog, &GotImage::default(), &ExternTable::new());
        assert_eq!(interp.unwrap_err(), ExecError::PcOutOfBounds { pc: 99 });
        assert_eq!(res.unwrap_err(), ExecError::PcOutOfBounds { pc: 99 });
    }

    #[test]
    fn fuel_exhausts_identically_mid_pair() {
        // An infinite fused-back-edge loop: both executors must run out of
        // fuel rather than diverge, whatever the parity of the fuel budget.
        let mut asm = Assembler::new();
        asm.load_imm(Reg(1), 1)
            .label("spin")
            .alu_imm(AluOp::Add, Reg(1), Reg(1), 1)
            .jnz(Reg(1), "spin")
            .ret();
        let prog = asm.finish().unwrap();
        let got = GotImage::default();
        let externs = ExternTable::new();
        for fuel in [7u64, 8] {
            let cfg = VmConfig {
                fuel,
                ..VmConfig::default()
            };
            let mut bus = FlatMemory::free();
            let interp = Vm::execute(
                &prog,
                &got,
                &externs,
                &mut AddressSpace::new(),
                &mut bus,
                &cfg,
            );
            let resolved = resolve(&prog, &got);
            let mut bus = FlatMemory::free();
            let res = Vm::execute_resolved(
                &resolved,
                &externs,
                &mut AddressSpace::new(),
                &mut bus,
                &cfg,
            );
            assert_eq!(interp.unwrap_err(), ExecError::FuelExhausted);
            assert_eq!(res.unwrap_err(), ExecError::FuelExhausted);
        }
    }

    #[test]
    fn block_batched_fetch_is_fewer_accesses_than_interpreter() {
        let mut a = Assembler::new();
        a.load_imm(Reg(1), 1)
            .load_imm(Reg(2), 2)
            .add(Reg(0), Reg(1), Reg(2))
            .load_imm(Reg(3), 3)
            .add(Reg(0), Reg(0), Reg(3))
            .ret();
        let prog = a.finish().unwrap();
        let got = GotImage::default();
        let externs = ExternTable::new();
        let cfg = VmConfig {
            code_base: 0x7000,
            ..VmConfig::default()
        };
        let mut bus = FlatMemory::free();
        bus.per_access = SimTime::from_ns(3);
        let interp = Vm::execute(
            &prog,
            &got,
            &externs,
            &mut AddressSpace::new(),
            &mut bus,
            &cfg,
        )
        .unwrap();
        let resolved = resolve(&prog, &got);
        let mut bus = FlatMemory::free();
        bus.per_access = SimTime::from_ns(3);
        let res = Vm::execute_resolved(
            &resolved,
            &externs,
            &mut AddressSpace::new(),
            &mut bus,
            &cfg,
        )
        .unwrap();
        // Straight-line program = one block = one fetch access.
        assert_eq!(res.fetch_time, SimTime::from_ns(3));
        assert!(res.fetch_time < interp.fetch_time);
        assert_eq!(res.result, interp.result);
        // The tolerance sandwich the differential suite pins.
        assert!(interp.compute_time + interp.memory_time <= res.total_time());
        assert!(res.total_time() <= interp.total_time());
    }

    #[test]
    fn image_bytes_scale_with_op_count() {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 1).ret();
        let prog = a.finish().unwrap();
        let resolved = resolve(&prog, &GotImage::default());
        assert_eq!(resolved.len(), 2);
        assert!(!resolved.is_empty());
        assert_eq!(resolved.image_bytes(), 2 * RESOLVED_OP_BYTES);
    }

    #[test]
    fn empty_program_faults_at_pc_zero() {
        let (interp, res, resolved) = run_both(&[], &GotImage::default(), &ExternTable::new());
        assert!(resolved.is_empty());
        assert_eq!(interp.unwrap_err(), ExecError::PcOutOfBounds { pc: 0 });
        assert_eq!(res.unwrap_err(), ExecError::PcOutOfBounds { pc: 0 });
    }
}
