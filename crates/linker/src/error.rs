//! Linking and object-format errors.

use std::fmt;

/// Errors produced by the linker substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A symbol referenced by a jam's GOT could not be resolved in this namespace.
    UnresolvedSymbol(String),
    /// A symbol was defined by more than one loaded ried with conflicting kinds.
    SymbolKindMismatch(String),
    /// The object blob has a bad magic number or unsupported version.
    BadObjectFormat(String),
    /// The object's bytecode failed verification.
    VerifyFailed(String),
    /// The object's bytecode could not be decoded.
    DecodeFailed(String),
    /// A package element name or id was not found.
    NoSuchElement(String),
    /// A ried with this name is already loaded and `replace` was not requested.
    AlreadyLoaded(String),
    /// Invalid definition passed to the build toolchain.
    InvalidDefinition(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UnresolvedSymbol(s) => write!(f, "unresolved symbol: {s}"),
            LinkError::SymbolKindMismatch(s) => write!(f, "symbol kind mismatch: {s}"),
            LinkError::BadObjectFormat(s) => write!(f, "bad object format: {s}"),
            LinkError::VerifyFailed(s) => write!(f, "bytecode verification failed: {s}"),
            LinkError::DecodeFailed(s) => write!(f, "bytecode decode failed: {s}"),
            LinkError::NoSuchElement(s) => write!(f, "no such package element: {s}"),
            LinkError::AlreadyLoaded(s) => write!(f, "ried already loaded: {s}"),
            LinkError::InvalidDefinition(s) => write!(f, "invalid definition: {s}"),
        }
    }
}

impl std::error::Error for LinkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        assert!(LinkError::UnresolvedSymbol("tbl_put".into())
            .to_string()
            .contains("tbl_put"));
        assert!(LinkError::BadObjectFormat("magic".into())
            .to_string()
            .contains("magic"));
        let e: Box<dyn std::error::Error> = Box::new(LinkError::NoSuchElement("x".into()));
        assert!(e.to_string().contains("x"));
    }
}
