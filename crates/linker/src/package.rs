//! Packages: the unit of distribution for jams and rieds.
//!
//! "The Two-Chains are organized into packages. Each package has a package name ...
//! A package contains elements; each has a unique element ID and element name within
//! the package" (§IV-A). The build tools take a list of jam/ried sources, produce
//! shared objects, and generate a package header that programs include to refer to
//! elements by ID. Here the header generation produces a Rust-flavoured constant
//! listing instead of a C header, but it plays the same role.

use std::collections::HashMap;

use crate::error::LinkError;
use crate::object::JamObject;
use crate::ried::Ried;

/// Identifier of an element within a package (the value carried in message headers so
/// the receiver can find the Local Function implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

/// One element of a package.
#[derive(Debug, Clone)]
pub enum PackageElement {
    /// An injectable jam.
    Jam(JamObject),
    /// A ried (interface library).
    Ried(Ried),
}

impl PackageElement {
    /// The element's name.
    pub fn name(&self) -> &str {
        match self {
            PackageElement::Jam(j) => &j.name,
            PackageElement::Ried(r) => r.name(),
        }
    }

    /// Whether this element is a jam.
    pub fn is_jam(&self) -> bool {
        matches!(self, PackageElement::Jam(_))
    }
}

/// A built package.
#[derive(Debug, Clone, Default)]
pub struct Package {
    name: String,
    elements: Vec<PackageElement>,
    by_name: HashMap<String, ElementId>,
}

impl Package {
    /// Create an empty package.
    pub fn new(name: &str) -> Self {
        Package {
            name: name.to_string(),
            elements: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add an element; IDs are assigned in insertion order. Names must be unique.
    pub fn add(&mut self, element: PackageElement) -> Result<ElementId, LinkError> {
        let name = element.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(LinkError::InvalidDefinition(format!(
                "duplicate element name {name}"
            )));
        }
        let id = ElementId(self.elements.len() as u32);
        self.by_name.insert(name, id);
        self.elements.push(element);
        Ok(id)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the package has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Look an element up by ID.
    pub fn element(&self, id: ElementId) -> Result<&PackageElement, LinkError> {
        self.elements
            .get(id.0 as usize)
            .ok_or_else(|| LinkError::NoSuchElement(format!("id {}", id.0)))
    }

    /// Look an element up by name.
    pub fn element_by_name(&self, name: &str) -> Result<(ElementId, &PackageElement), LinkError> {
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| LinkError::NoSuchElement(name.to_string()))?;
        Ok((id, &self.elements[id.0 as usize]))
    }

    /// The ID of a named element.
    pub fn id_of(&self, name: &str) -> Option<ElementId> {
        self.by_name.get(name).copied()
    }

    /// The jam stored under `id`, or an error if the element is a ried.
    pub fn jam(&self, id: ElementId) -> Result<&JamObject, LinkError> {
        match self.element(id)? {
            PackageElement::Jam(j) => Ok(j),
            PackageElement::Ried(r) => Err(LinkError::NoSuchElement(format!(
                "element {} is a ried ({})",
                id.0,
                r.name()
            ))),
        }
    }

    /// Iterate over all jams with their IDs.
    pub fn jams(&self) -> impl Iterator<Item = (ElementId, &JamObject)> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                PackageElement::Jam(j) => Some((ElementId(i as u32), j)),
                _ => None,
            })
    }

    /// Iterate over all rieds with their IDs.
    pub fn rieds(&self) -> impl Iterator<Item = (ElementId, &Ried)> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                PackageElement::Ried(r) => Some((ElementId(i as u32), r)),
                _ => None,
            })
    }

    /// Generate the package "header": a constant listing of element IDs by name, the
    /// analogue of the generated C header a program includes after installing the
    /// package.
    pub fn generate_header(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "// Generated package header for `{}`\n",
            self.name
        ));
        out.push_str(&format!(
            "pub const PACKAGE_NAME: &str = \"{}\";\n",
            self.name
        ));
        for (i, e) in self.elements.iter().enumerate() {
            let const_name = e
                .name()
                .to_uppercase()
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect::<String>();
            out.push_str(&format!("pub const ELEM_{const_name}: u32 = {i};\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ried::RiedBuilder;
    use crate::symbol::SymbolRef;
    use twochains_jamvm::{Assembler, Reg};

    fn jam(name: &str) -> JamObject {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 1).call_extern(0, 0).ret();
        JamObject::from_program(
            name,
            &a.finish().unwrap(),
            vec![],
            vec![SymbolRef::func("f")],
            8,
        )
        .unwrap()
    }

    fn package() -> Package {
        let mut p = Package::new("twochains_test_pkg");
        p.add(PackageElement::Ried(RiedBuilder::new("ried_array").build()))
            .unwrap();
        p.add(PackageElement::Jam(jam("jam_ssum"))).unwrap();
        p.add(PackageElement::Jam(jam("jam_indirect_put"))).unwrap();
        p
    }

    #[test]
    fn ids_follow_insertion_order() {
        let p = package();
        assert_eq!(p.len(), 3);
        assert_eq!(p.id_of("ried_array"), Some(ElementId(0)));
        assert_eq!(p.id_of("jam_ssum"), Some(ElementId(1)));
        assert_eq!(p.id_of("jam_indirect_put"), Some(ElementId(2)));
        assert!(p.id_of("nope").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut p = package();
        assert!(matches!(
            p.add(PackageElement::Jam(jam("jam_ssum"))),
            Err(LinkError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn element_lookup_by_id_and_name() {
        let p = package();
        assert!(p.element(ElementId(0)).unwrap().name() == "ried_array");
        assert!(p.element(ElementId(9)).is_err());
        let (id, e) = p.element_by_name("jam_ssum").unwrap();
        assert_eq!(id, ElementId(1));
        assert!(e.is_jam());
        assert!(p.element_by_name("nope").is_err());
    }

    #[test]
    fn jam_accessor_rejects_rieds() {
        let p = package();
        assert!(p.jam(ElementId(1)).is_ok());
        assert!(matches!(
            p.jam(ElementId(0)),
            Err(LinkError::NoSuchElement(_))
        ));
        assert_eq!(p.jams().count(), 2);
        assert_eq!(p.rieds().count(), 1);
    }

    #[test]
    fn header_generation_lists_elements() {
        let p = package();
        let h = p.generate_header();
        assert!(h.contains("PACKAGE_NAME"));
        assert!(h.contains("ELEM_JAM_SSUM: u32 = 1"));
        assert!(h.contains("ELEM_JAM_INDIRECT_PUT: u32 = 2"));
        assert!(h.contains("ELEM_RIED_ARRAY: u32 = 0"));
    }

    #[test]
    fn empty_package() {
        let p = Package::new("empty");
        assert!(p.is_empty());
        assert_eq!(p.name(), "empty");
    }
}
