//! # twochains-linker
//!
//! The remote-linking substrate: an ELF-like relocatable object format for jams, the
//! ried (Relocatable Interface Distribution) shared-library abstraction, per-process
//! dynamic-linker namespaces, packages, and the build toolchain.
//!
//! In the paper, the Two-Chains toolchain compiles each jam source file with
//! `-fPIC -fno-plt -shared`, statically rewrites GOT accesses to indirect through a
//! pointer at a chosen PC-relative location, and installs the resulting shared
//! objects into a *package*. Rieds are ordinary shared libraries a process "drives
//! over" to a peer so both sides agree on interfaces and data objects; symbol
//! resolution happens per process via standard ELF loading, no central name registry.
//!
//! This crate reproduces that pipeline over the jam VM:
//!
//! * [`object::JamObject`] — the relocatable object: encoded `.text`, `.rodata`, a
//!   *symbolic* GOT (slot → symbol name), and a fixed ARGS-block size; binary
//!   serialization with magic/version words ([`object`]).
//! * [`ried::Ried`] — a loadable interface library: named extern functions
//!   (receiver-side Rust closures standing in for the shared library's code) and
//!   named data objects (heaps/tables) with an optional auto-init hook.
//! * [`namespace::LinkerNamespace`] — the per-process dynamic linker: load rieds,
//!   `dlsym` by name, resolve a jam's symbolic GOT into a concrete
//!   [`twochains_jamvm::GotImage`] for this process ("remote linking").
//! * [`package::Package`] / [`builder::PackageBuilder`] — the build toolchain:
//!   element IDs and names, header generation, and the dual build of every jam as an
//!   injectable object *and* a locally invocable program (the paper's Local Function
//!   variant comes "from the same source").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod error;
pub mod namespace;
pub mod object;
pub mod package;
pub mod ried;
pub mod symbol;

pub use builder::{JamDefinition, PackageBuilder};
pub use error::LinkError;
pub use namespace::{DataObject, LinkerNamespace};
pub use object::JamObject;
pub use package::{ElementId, Package, PackageElement};
pub use ried::{Ried, RiedBuilder, RiedDataExport};
pub use symbol::{SymbolKind, SymbolRef};
