//! The jam object format — the reproduction's ELF stand-in.
//!
//! A [`JamObject`] is what the build toolchain produces from a jam definition and
//! what a sender packs (in part) into an active message: position-independent
//! `.text` bytecode, optional `.rodata`, a *symbolic* GOT listing the external names
//! the code references (one [`SymbolRef`] per slot), and the size of the fixed ARGS
//! block the jam expects. The binary serialization carries a magic number and format
//! version so stale or foreign blobs are rejected, the way an ELF loader checks
//! `e_ident`.

use twochains_jamvm::{decode_program, encode_program, verify, Instr};

use crate::error::LinkError;
use crate::symbol::SymbolRef;

/// Magic bytes identifying a serialized jam object ("JAM" + format version 2,
/// which added the cross-shard-writes declaration byte).
pub const JAM_MAGIC: [u8; 4] = *b"JAM\x02";

/// A relocatable, injectable function object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JamObject {
    /// Element name within its package (e.g. `"jam_indirect_put"`).
    pub name: String,
    /// Encoded bytecode (`.text`).
    pub text: Vec<u8>,
    /// Read-only data pulled in by the toolchain (`.rodata`).
    pub rodata: Vec<u8>,
    /// Symbolic GOT: slot *i* of the shipped GOT image resolves `got[i]`.
    pub got: Vec<SymbolRef>,
    /// Size in bytes of the fixed ARGS block this jam expects in the frame.
    pub args_size: usize,
    /// Whether this jam declares writes to *cross-shard* (process-global
    /// writable) state. A sharded receiver running in shard-local space mode
    /// executes such jams under the exclusive address-space lock; jams without
    /// the declaration run lock-free against per-shard segments.
    pub cross_shard_writes: bool,
    /// Object format / ABI version of the producing toolchain.
    pub version: u32,
}

impl JamObject {
    /// Construct an object from already-encoded text. Verifies the bytecode against
    /// the declared GOT size.
    pub fn new(
        name: &str,
        text: Vec<u8>,
        rodata: Vec<u8>,
        got: Vec<SymbolRef>,
        args_size: usize,
    ) -> Result<Self, LinkError> {
        let program = decode_program(&text).map_err(|e| LinkError::DecodeFailed(e.to_string()))?;
        verify(&program, got.len()).map_err(|e| LinkError::VerifyFailed(e.to_string()))?;
        Ok(JamObject {
            name: name.to_string(),
            text,
            rodata,
            got,
            args_size,
            cross_shard_writes: false,
            version: 2,
        })
    }

    /// Construct from decoded instructions (encodes them for you).
    pub fn from_program(
        name: &str,
        program: &[Instr],
        rodata: Vec<u8>,
        got: Vec<SymbolRef>,
        args_size: usize,
    ) -> Result<Self, LinkError> {
        Self::new(name, encode_program(program), rodata, got, args_size)
    }

    /// Declare that this jam writes cross-shard (process-global) state.
    pub fn with_cross_shard_writes(mut self) -> Self {
        self.cross_shard_writes = true;
        self
    }

    /// Decode the `.text` back into instructions.
    pub fn program(&self) -> Result<Vec<Instr>, LinkError> {
        decode_program(&self.text).map_err(|e| LinkError::DecodeFailed(e.to_string()))
    }

    /// Size in bytes of the code as shipped in a message.
    pub fn code_size(&self) -> usize {
        self.text.len()
    }

    /// Size in bytes of the GOT image as shipped in a message (8 bytes per slot,
    /// matching [`twochains_jamvm::GotImage::to_bytes`]).
    pub fn got_size(&self) -> usize {
        self.got.len() * 8
    }

    /// Serialize to the on-disk / on-wire object format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&JAM_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.args_size as u32).to_le_bytes());
        out.push(self.cross_shard_writes as u8);
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.text);
        out.extend_from_slice(&(self.rodata.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.rodata);
        out.extend_from_slice(&(self.got.len() as u16).to_le_bytes());
        for s in &self.got {
            out.extend_from_slice(&s.to_bytes());
        }
        out
    }

    /// Deserialize an object, validating magic, version and bytecode.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LinkError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], LinkError> {
            if *pos + n > bytes.len() {
                return Err(LinkError::BadObjectFormat("truncated object".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 4)?;
        if magic != JAM_MAGIC {
            return Err(LinkError::BadObjectFormat(format!("bad magic {magic:?}")));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if version != 2 {
            return Err(LinkError::BadObjectFormat(format!(
                "unsupported version {version}"
            )));
        }
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| LinkError::BadObjectFormat("name not utf8".into()))?;
        let args_size = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let cross_shard = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            other => {
                return Err(LinkError::BadObjectFormat(format!(
                    "bad cross-shard flag {other}"
                )))
            }
        };
        let text_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let text = take(&mut pos, text_len)?.to_vec();
        let rodata_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let rodata = take(&mut pos, rodata_len)?.to_vec();
        let got_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let mut got = Vec::with_capacity(got_len);
        for _ in 0..got_len {
            let (sym, used) = SymbolRef::from_bytes(&bytes[pos..])
                .ok_or_else(|| LinkError::BadObjectFormat("bad symbol entry".into()))?;
            pos += used;
            got.push(sym);
        }
        let obj = Self::new(&name, text, rodata, got, args_size)?;
        Ok(if cross_shard {
            obj.with_cross_shard_writes()
        } else {
            obj
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolRef;
    use twochains_jamvm::{Assembler, Reg};

    fn simple_program() -> Vec<Instr> {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 5).call_extern(0, 1).ret();
        a.finish().unwrap()
    }

    fn object() -> JamObject {
        JamObject::from_program(
            "jam_test",
            &simple_program(),
            b"hello\0".to_vec(),
            vec![SymbolRef::func("scale")],
            16,
        )
        .unwrap()
    }

    #[test]
    fn construction_verifies_bytecode() {
        // Referencing GOT slot 0 with an empty GOT must fail verification.
        let err = JamObject::from_program("bad", &simple_program(), vec![], vec![], 0).unwrap_err();
        assert!(matches!(err, LinkError::VerifyFailed(_)));
        // Garbage text must fail decoding.
        let err = JamObject::new("bad", vec![0xFF, 0xFF], vec![], vec![], 0).unwrap_err();
        assert!(matches!(err, LinkError::DecodeFailed(_)));
    }

    #[test]
    fn serialization_roundtrip() {
        let obj = object();
        let bytes = obj.to_bytes();
        let back = JamObject::from_bytes(&bytes).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.program().unwrap(), simple_program());
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let obj = object();
        let mut bytes = obj.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            JamObject::from_bytes(&bytes),
            Err(LinkError::BadObjectFormat(_))
        ));
        let bytes = obj.to_bytes();
        assert!(matches!(
            JamObject::from_bytes(&bytes[..bytes.len() - 3]),
            Err(LinkError::BadObjectFormat(_))
        ));
        let mut bytes = obj.to_bytes();
        bytes[4] = 9; // version
        assert!(matches!(
            JamObject::from_bytes(&bytes),
            Err(LinkError::BadObjectFormat(_))
        ));
    }

    #[test]
    fn sizes_reflect_sections() {
        let obj = object();
        assert_eq!(obj.code_size(), obj.text.len());
        assert_eq!(obj.got_size(), 8);
        assert_eq!(obj.args_size, 16);
    }
}
