//! The build toolchain: jam definitions in, packages out.
//!
//! The paper's build tools take a directory of canonical single-source-file jam and
//! ried definitions (`jam_append.amc`, `ried_array.rdc`), compile each jam twice —
//! once GOT-rewritten for injection and once unmodified into the Local Function
//! shared library — and install the package plus a generated header. The
//! [`PackageBuilder`] does the equivalent for jam-VM programs:
//!
//! * verifies and encodes each definition into a [`JamObject`],
//! * optionally pads `.text` to a target byte size (the paper's Indirect Put code is
//!   1408 bytes on the wire; padding lets the reproduction match the footprint that
//!   the message-size arithmetic of Figs. 7–8 depends on),
//! * records the same program as the locally invocable variant (the Local Function
//!   library "generated ... from the same source"), and
//! * assigns element IDs and generates the package header.

use twochains_jamvm::{encode_program, encoded_size, Instr};

use crate::error::LinkError;
use crate::object::JamObject;
use crate::package::{Package, PackageElement};
use crate::ried::Ried;
use crate::symbol::SymbolRef;

/// A single jam definition handed to the toolchain (the `.amc` source analogue).
#[derive(Debug, Clone)]
pub struct JamDefinition {
    /// Element name, canonically `jam_<something>`.
    pub name: String,
    /// The program.
    pub program: Vec<Instr>,
    /// Symbolic GOT (external references, in slot order).
    pub got: Vec<SymbolRef>,
    /// Read-only data to ship with the jam.
    pub rodata: Vec<u8>,
    /// Size of the fixed ARGS block the jam expects.
    pub args_size: usize,
    /// If set, pad `.text` with `Nop`s to exactly this many bytes.
    pub pad_text_to: Option<usize>,
    /// Whether this jam declares writes to cross-shard (process-global
    /// writable) state — see [`JamObject::cross_shard_writes`].
    pub cross_shard_writes: bool,
}

impl JamDefinition {
    /// A minimal definition with no externals and no padding.
    pub fn new(name: &str, program: Vec<Instr>) -> Self {
        JamDefinition {
            name: name.to_string(),
            program,
            got: Vec::new(),
            rodata: Vec::new(),
            args_size: 0,
            pad_text_to: None,
            cross_shard_writes: false,
        }
    }

    /// Set the symbolic GOT.
    pub fn with_got(mut self, got: Vec<SymbolRef>) -> Self {
        self.got = got;
        self
    }

    /// Set the ARGS block size.
    pub fn with_args_size(mut self, n: usize) -> Self {
        self.args_size = n;
        self
    }

    /// Set read-only data.
    pub fn with_rodata(mut self, rodata: Vec<u8>) -> Self {
        self.rodata = rodata;
        self
    }

    /// Request `.text` padding to `n` bytes.
    pub fn padded_to(mut self, n: usize) -> Self {
        self.pad_text_to = Some(n);
        self
    }

    /// Declare that this jam writes cross-shard (process-global) state, so a
    /// sharded receiver in shard-local space mode executes it under the
    /// exclusive address-space lock instead of the lock-free per-shard path.
    pub fn with_cross_shard_writes(mut self) -> Self {
        self.cross_shard_writes = true;
        self
    }
}

/// Pad a program with `Nop`s appended *after* its terminator until its encoded size
/// reaches `target` bytes. The padding is never executed (control flow returns at the
/// original terminator) and branch targets are untouched; a final `Ret` keeps the
/// verifier's fall-through check satisfied.
fn pad_program(mut program: Vec<Instr>, target: usize) -> Result<Vec<Instr>, LinkError> {
    let current: usize = program.iter().map(encoded_size).sum();
    if current > target {
        return Err(LinkError::InvalidDefinition(format!(
            "program is {current} bytes, larger than pad target {target}"
        )));
    }
    let needed = target - current;
    if needed == 0 {
        return Ok(program);
    }
    // needed-1 Nops plus one trailing Ret (both 1 byte) hit the target exactly.
    program.extend(std::iter::repeat_n(Instr::Nop, needed - 1));
    program.push(Instr::Ret);
    Ok(program)
}

/// The package build toolchain.
#[derive(Debug, Default)]
pub struct PackageBuilder {
    name: String,
    jams: Vec<JamDefinition>,
    rieds: Vec<Ried>,
}

impl PackageBuilder {
    /// Start building a package called `name`.
    pub fn new(name: &str) -> Self {
        PackageBuilder {
            name: name.to_string(),
            jams: Vec::new(),
            rieds: Vec::new(),
        }
    }

    /// Add a jam definition.
    pub fn jam(mut self, def: JamDefinition) -> Self {
        self.jams.push(def);
        self
    }

    /// Add a ried.
    pub fn ried(mut self, ried: Ried) -> Self {
        self.rieds.push(ried);
        self
    }

    /// Build the package: rieds first (so their element IDs are stable for loaders),
    /// then jams in definition order.
    pub fn build(self) -> Result<Package, LinkError> {
        let mut pkg = Package::new(&self.name);
        for ried in self.rieds {
            pkg.add(PackageElement::Ried(ried))?;
        }
        for def in self.jams {
            if def.name.is_empty() {
                return Err(LinkError::InvalidDefinition("jam needs a name".into()));
            }
            let program = match def.pad_text_to {
                Some(target) => pad_program(def.program, target)?,
                None => def.program,
            };
            let text = encode_program(&program);
            let mut obj = JamObject::new(&def.name, text, def.rodata, def.got, def.args_size)?;
            if def.cross_shard_writes {
                obj = obj.with_cross_shard_writes();
            }
            pkg.add(PackageElement::Jam(obj))?;
        }
        Ok(pkg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ried::RiedBuilder;
    use twochains_jamvm::{Assembler, Reg};

    fn sum_program() -> Vec<Instr> {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 0)
            .load_imm(Reg(1), 4)
            .label("loop")
            .add(Reg(0), Reg(0), Reg(1))
            .alu_imm(twochains_jamvm::isa::AluOp::Sub, Reg(1), Reg(1), 1)
            .jnz(Reg(1), "loop")
            .ret();
        a.finish().unwrap()
    }

    #[test]
    fn build_produces_objects_and_ids() {
        let pkg = PackageBuilder::new("pkg")
            .ried(RiedBuilder::new("ried_array").build())
            .jam(JamDefinition::new("jam_sum", sum_program()).with_args_size(16))
            .build()
            .unwrap();
        assert_eq!(pkg.len(), 2);
        let (id, _) = pkg.element_by_name("jam_sum").unwrap();
        let jam = pkg.jam(id).unwrap();
        assert_eq!(jam.args_size, 16);
        assert!(jam.code_size() > 0);
        assert!(pkg.generate_header().contains("ELEM_JAM_SUM"));
    }

    #[test]
    fn padding_reaches_exact_size_and_preserves_semantics() {
        let def = JamDefinition::new("jam_sum", sum_program()).padded_to(1408);
        let pkg = PackageBuilder::new("pkg").jam(def).build().unwrap();
        let jam = pkg.jam(pkg.id_of("jam_sum").unwrap()).unwrap();
        assert_eq!(
            jam.code_size(),
            1408,
            "the paper's Indirect Put code footprint"
        );
        // The padded program still runs and produces the same result.
        use twochains_jamvm::{AddressSpace, ExternTable, GotImage, Vm, VmConfig};
        use twochains_memsim::hierarchy::FlatMemory;
        let mut bus = FlatMemory::free();
        let stats = Vm::execute(
            &jam.program().unwrap(),
            &GotImage::default(),
            &ExternTable::new(),
            &mut AddressSpace::new(),
            &mut bus,
            &VmConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.result, 4 + 3 + 2 + 1);
    }

    #[test]
    fn padding_smaller_than_program_is_rejected() {
        let def = JamDefinition::new("jam_sum", sum_program()).padded_to(4);
        assert!(matches!(
            PackageBuilder::new("pkg").jam(def).build(),
            Err(LinkError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn builder_propagates_verification_failures() {
        // References GOT slot 0 but declares no symbols.
        let mut a = Assembler::new();
        a.call_extern(0, 0).ret();
        let def = JamDefinition::new("jam_bad", a.finish().unwrap());
        assert!(matches!(
            PackageBuilder::new("pkg").jam(def).build(),
            Err(LinkError::VerifyFailed(_))
        ));
    }

    #[test]
    fn unnamed_jam_rejected() {
        let def = JamDefinition::new("", sum_program());
        assert!(matches!(
            PackageBuilder::new("pkg").jam(def).build(),
            Err(LinkError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn rieds_get_lower_ids_than_jams() {
        let pkg = PackageBuilder::new("pkg")
            .jam(JamDefinition::new("jam_sum", sum_program()))
            .ried(RiedBuilder::new("ried_a").build())
            .ried(RiedBuilder::new("ried_b").build())
            .build()
            .unwrap();
        assert_eq!(pkg.id_of("ried_a").unwrap().0, 0);
        assert_eq!(pkg.id_of("ried_b").unwrap().0, 1);
        assert_eq!(pkg.id_of("jam_sum").unwrap().0, 2);
    }
}
