//! Symbols and symbolic references.
//!
//! The paper's programming model "uses name binding instead of function
//! registration": a jam refers to receiver-side functionality purely by canonical
//! symbolic name, and each process resolves those names against whatever rieds it has
//! loaded — so two processes may legitimately bind the *same* name to *different*
//! implementations (the paper likens this to function overloading per process).

use std::fmt;

/// Whether a symbol names code or data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A callable function (reached with `CallExtern`).
    Function,
    /// A data object (its resolved address is placed in the GOT slot).
    Data,
}

/// A symbolic reference held in a jam's GOT slot before resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SymbolRef {
    /// Canonical symbol name, e.g. `"ried_table.put"`.
    pub name: String,
    /// Expected kind.
    pub kind: SymbolKind,
}

impl SymbolRef {
    /// A function symbol.
    pub fn func(name: &str) -> Self {
        SymbolRef {
            name: name.to_string(),
            kind: SymbolKind::Function,
        }
    }

    /// A data symbol.
    pub fn data(name: &str) -> Self {
        SymbolRef {
            name: name.to_string(),
            kind: SymbolKind::Data,
        }
    }

    /// Whether the name is a valid canonical symbol: non-empty, ASCII, no whitespace.
    pub fn is_valid(&self) -> bool {
        !self.name.is_empty()
            && self.name.is_ascii()
            && !self.name.chars().any(|c| c.is_whitespace())
            && self.name.len() <= 255
    }

    /// Serialize to bytes: kind byte + u16 length + name bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.name.len());
        out.push(match self.kind {
            SymbolKind::Function => 0,
            SymbolKind::Data => 1,
        });
        out.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out
    }

    /// Deserialize from bytes; returns the symbol and the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        if bytes.len() < 3 {
            return None;
        }
        let kind = match bytes[0] {
            0 => SymbolKind::Function,
            1 => SymbolKind::Data,
            _ => return None,
        };
        let len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
        if bytes.len() < 3 + len {
            return None;
        }
        let name = String::from_utf8(bytes[3..3 + len].to_vec()).ok()?;
        Some((SymbolRef { name, kind }, 3 + len))
    }
}

impl fmt::Display for SymbolRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SymbolKind::Function => write!(f, "{}()", self.name),
            SymbolKind::Data => write!(f, "&{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let f = SymbolRef::func("table.put");
        let d = SymbolRef::data("table.base");
        assert_eq!(f.kind, SymbolKind::Function);
        assert_eq!(d.kind, SymbolKind::Data);
        assert_eq!(f.to_string(), "table.put()");
        assert_eq!(d.to_string(), "&table.base");
    }

    #[test]
    fn validity_rules() {
        assert!(SymbolRef::func("ok_name.v2").is_valid());
        assert!(!SymbolRef::func("").is_valid());
        assert!(!SymbolRef::func("has space").is_valid());
        assert!(!SymbolRef::func("ünïcode").is_valid());
        assert!(!SymbolRef::func(&"x".repeat(300)).is_valid());
    }

    #[test]
    fn byte_roundtrip() {
        for sym in [
            SymbolRef::func("memcpy_to_heap"),
            SymbolRef::data("array.base"),
        ] {
            let bytes = sym.to_bytes();
            let (back, used) = SymbolRef::from_bytes(&bytes).unwrap();
            assert_eq!(back, sym);
            assert_eq!(used, bytes.len());
        }
        // Trailing data is fine; consumed length tells the caller where to continue.
        let mut bytes = SymbolRef::func("a").to_bytes();
        bytes.extend_from_slice(b"junk");
        let (_, used) = SymbolRef::from_bytes(&bytes).unwrap();
        assert_eq!(used, 4);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(SymbolRef::from_bytes(&[]).is_none());
        assert!(
            SymbolRef::from_bytes(&[9, 1, 0, b'x']).is_none(),
            "bad kind"
        );
        assert!(
            SymbolRef::from_bytes(&[0, 10, 0, b'x']).is_none(),
            "length exceeds buffer"
        );
        assert!(
            SymbolRef::from_bytes(&[0, 2, 0, 0xFF, 0xFE]).is_none(),
            "invalid utf8"
        );
    }
}
