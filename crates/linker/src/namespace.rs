//! Per-process dynamic-linker namespaces.
//!
//! A [`LinkerNamespace`] is the reproduction of "ELF library loading as a per-process
//! name resolution mechanism" (§II-B): every process loads whichever rieds it wants,
//! each load binds the ried's exported names in *that process only*, and a jam
//! arriving over the network gets its symbolic GOT resolved against the local
//! bindings — so the same jam can do different things on different receivers, which
//! is exactly the function-overloading-per-process behaviour the paper advertises.

use std::collections::HashMap;

use twochains_jamvm::{AddressSpace, ExternRef, ExternTable, GotImage, Segment};

use crate::error::LinkError;
use crate::ried::Ried;
use crate::symbol::{SymbolKind, SymbolRef};

/// Result of looking a symbol up in a namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// A function, identified by its extern-table index.
    Function(u32),
    /// A data object, identified by its simulated base address.
    Data(u64),
}

#[derive(Debug, Clone)]
struct DataBinding {
    addr: u64,
    size: usize,
    writable: bool,
    kind: twochains_jamvm::SegmentKind,
    init: Vec<u8>,
    mapped: bool,
}

/// A per-process symbol namespace.
pub struct LinkerNamespace {
    externs: ExternTable,
    data: HashMap<String, DataBinding>,
    loaded: HashMap<String, u32>,
    data_cursor: u64,
}

impl std::fmt::Debug for LinkerNamespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkerNamespace")
            .field("rieds", &self.loaded)
            .field("functions", &self.externs.len())
            .field("data_objects", &self.data.len())
            .finish()
    }
}

impl Default for LinkerNamespace {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkerNamespace {
    /// Base simulated address at which ried data objects are laid out.
    pub const DATA_BASE: u64 = 0x4000_0000;

    /// An empty namespace.
    pub fn new() -> Self {
        LinkerNamespace {
            externs: ExternTable::new(),
            data: HashMap::new(),
            loaded: HashMap::new(),
            data_cursor: Self::DATA_BASE,
        }
    }

    /// Load a ried, binding all of its exports.
    ///
    /// Loading a ried that is already loaded fails unless `replace` is true, in which
    /// case function bindings are replaced *in place* (existing extern indices, and
    /// therefore already-resolved GOT images, keep working — the live-update story)
    /// and data objects keep their addresses and current contents.
    pub fn load_ried(&mut self, ried: &Ried, replace: bool) -> Result<(), LinkError> {
        if self.loaded.contains_key(ried.name()) && !replace {
            return Err(LinkError::AlreadyLoaded(ried.name().to_string()));
        }
        for (name, f) in ried.functions() {
            self.externs.register(name, f.clone());
        }
        for d in ried.data() {
            if let Some(existing) = self.data.get(&d.name) {
                // Keep address and live contents across reloads; size cannot change.
                if existing.size != d.init.len() {
                    return Err(LinkError::SymbolKindMismatch(format!(
                        "data object {} resized across reload ({} -> {})",
                        d.name,
                        existing.size,
                        d.init.len()
                    )));
                }
                continue;
            }
            let aligned = (d.init.len().div_ceil(4096) * 4096) as u64 + 4096;
            let addr = self.data_cursor;
            self.data_cursor += aligned;
            self.data.insert(
                d.name.clone(),
                DataBinding {
                    addr,
                    size: d.init.len(),
                    writable: d.writable,
                    kind: d.kind,
                    init: d.init.clone(),
                    mapped: false,
                },
            );
        }
        self.loaded.insert(ried.name().to_string(), ried.version());
        if let Some(hook) = ried.init_hook() {
            hook(ried.name());
        }
        Ok(())
    }

    /// Names and versions of loaded rieds.
    pub fn loaded_rieds(&self) -> Vec<(String, u32)> {
        let mut v: Vec<_> = self
            .loaded
            .iter()
            .map(|(k, &ver)| (k.clone(), ver))
            .collect();
        v.sort();
        v
    }

    /// The extern table (needed by the VM at execution time).
    pub fn externs(&self) -> &ExternTable {
        &self.externs
    }

    /// Look a symbol up by name.
    pub fn dlsym(&self, name: &str) -> Option<Resolution> {
        if let Some(idx) = self.externs.index_of(name) {
            return Some(Resolution::Function(idx));
        }
        self.data.get(name).map(|d| Resolution::Data(d.addr))
    }

    /// Resolve a jam's symbolic GOT into a concrete GOT image for *this* process.
    /// This is the "remote linking" step: the sender (or receiver, depending on the
    /// security policy) runs it before the message is executed.
    pub fn resolve_got(&self, symbols: &[SymbolRef]) -> Result<GotImage, LinkError> {
        let mut image = GotImage::with_slots(symbols.len());
        for (i, sym) in symbols.iter().enumerate() {
            match (self.dlsym(&sym.name), sym.kind) {
                (Some(Resolution::Function(idx)), SymbolKind::Function) => {
                    image.set(i, ExternRef::Resolved(idx));
                }
                (Some(Resolution::Data(addr)), SymbolKind::Data) => {
                    image.set(i, ExternRef::Data(addr));
                }
                (Some(_), _) => {
                    return Err(LinkError::SymbolKindMismatch(sym.name.clone()));
                }
                (None, _) => return Err(LinkError::UnresolvedSymbol(sym.name.clone())),
            }
        }
        Ok(image)
    }

    /// Map every not-yet-mapped ried data object into `space` (the receiver's
    /// persistent jam address space). Idempotent.
    pub fn map_data_segments(&mut self, space: &mut AddressSpace) -> Result<(), LinkError> {
        let mut names: Vec<_> = self
            .data
            .iter()
            .filter(|(_, d)| !d.mapped)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        for name in names {
            let d = self.data.get(&name).unwrap().clone();
            space
                .map(Segment::new(
                    &name,
                    d.addr,
                    d.init.clone(),
                    d.writable,
                    d.kind,
                ))
                .map_err(|e| LinkError::InvalidDefinition(e.to_string()))?;
            self.data.get_mut(&name).unwrap().mapped = true;
        }
        Ok(())
    }

    /// The address bound to a data symbol, if any (useful for tests and examples that
    /// want to inspect receiver state after executions).
    pub fn data_addr(&self, name: &str) -> Option<u64> {
        self.data.get(name).map(|d| d.addr)
    }

    /// Every data object bound in this namespace, in address order, with its
    /// *initial* contents. The sharded receive path uses this to build the
    /// `Arc`-shared read-only base (non-writable objects) and the per-shard
    /// heap instances (writable objects) without going through the exclusive
    /// address space; `mapped` state is not consulted, so this is safe to call
    /// after [`LinkerNamespace::map_data_segments`].
    pub fn data_objects(&self) -> Vec<DataObject> {
        let mut out: Vec<DataObject> = self
            .data
            .iter()
            .map(|(name, d)| DataObject {
                name: name.clone(),
                addr: d.addr,
                init: d.init.clone(),
                writable: d.writable,
                kind: d.kind,
            })
            .collect();
        out.sort_by_key(|d| d.addr);
        out
    }
}

/// One data object bound in a namespace, as reported by
/// [`LinkerNamespace::data_objects`].
#[derive(Debug, Clone)]
pub struct DataObject {
    /// Exported symbol name.
    pub name: String,
    /// Simulated base address the namespace assigned.
    pub addr: u64,
    /// Initial contents (a fresh copy, not the live mapped state).
    pub init: Vec<u8>,
    /// Whether jams may store to the object.
    pub writable: bool,
    /// Segment classification.
    pub kind: twochains_jamvm::SegmentKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ried::RiedBuilder;
    use std::sync::Arc;

    fn table_ried() -> Ried {
        RiedBuilder::new("ried_table")
            .export_fn(
                "table.put",
                Arc::new(|_ctx, args| Ok(args.first().copied().unwrap_or(0))),
            )
            .export_fn("table.get", Arc::new(|_ctx, _| Ok(7)))
            .export_heap("table.base", 8192)
            .build()
    }

    #[test]
    fn load_and_dlsym() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        assert!(matches!(
            ns.dlsym("table.put"),
            Some(Resolution::Function(_))
        ));
        assert!(
            matches!(ns.dlsym("table.base"), Some(Resolution::Data(a)) if a >= LinkerNamespace::DATA_BASE)
        );
        assert!(ns.dlsym("missing").is_none());
        assert_eq!(ns.loaded_rieds(), vec![("ried_table".to_string(), 1)]);
    }

    #[test]
    fn double_load_requires_replace() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        assert!(matches!(
            ns.load_ried(&table_ried(), false),
            Err(LinkError::AlreadyLoaded(_))
        ));
        assert!(ns.load_ried(&table_ried(), true).is_ok());
    }

    #[test]
    fn reload_keeps_function_indices_and_data_addresses() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        let idx_before = match ns.dlsym("table.put").unwrap() {
            Resolution::Function(i) => i,
            _ => unreachable!(),
        };
        let addr_before = ns.data_addr("table.base").unwrap();
        // Reload with a new implementation of table.get.
        let v2 = RiedBuilder::new("ried_table")
            .version(2)
            .export_fn("table.put", Arc::new(|_ctx, _| Ok(1)))
            .export_fn("table.get", Arc::new(|_ctx, _| Ok(99)))
            .export_heap("table.base", 8192)
            .build();
        ns.load_ried(&v2, true).unwrap();
        let idx_after = match ns.dlsym("table.put").unwrap() {
            Resolution::Function(i) => i,
            _ => unreachable!(),
        };
        assert_eq!(idx_before, idx_after);
        assert_eq!(addr_before, ns.data_addr("table.base").unwrap());
        assert_eq!(ns.loaded_rieds(), vec![("ried_table".to_string(), 2)]);
    }

    #[test]
    fn resized_data_object_is_rejected_on_reload() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        let resized = RiedBuilder::new("ried_table")
            .export_heap("table.base", 16)
            .build();
        assert!(matches!(
            ns.load_ried(&resized, true),
            Err(LinkError::SymbolKindMismatch(_))
        ));
    }

    #[test]
    fn got_resolution() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        let got = ns
            .resolve_got(&[SymbolRef::func("table.put"), SymbolRef::data("table.base")])
            .unwrap();
        assert!(got.fully_resolved());
        assert!(matches!(got.get(0), ExternRef::Resolved(_)));
        assert!(matches!(got.get(1), ExternRef::Data(_)));
        // Unresolved and kind-mismatch errors.
        assert!(matches!(
            ns.resolve_got(&[SymbolRef::func("nope")]),
            Err(LinkError::UnresolvedSymbol(_))
        ));
        assert!(matches!(
            ns.resolve_got(&[SymbolRef::data("table.put")]),
            Err(LinkError::SymbolKindMismatch(_))
        ));
    }

    #[test]
    fn data_segments_map_once() {
        let mut ns = LinkerNamespace::new();
        ns.load_ried(&table_ried(), false).unwrap();
        let mut space = AddressSpace::new();
        ns.map_data_segments(&mut space).unwrap();
        assert!(space.segment("table.base").is_some());
        // Idempotent: calling again does not try to re-map.
        ns.map_data_segments(&mut space).unwrap();
        assert_eq!(space.len(), 1);
    }

    #[test]
    fn different_processes_can_bind_same_name_differently() {
        // The "function overloading across processes" property from the paper.
        let ried_a = RiedBuilder::new("impl")
            .export_fn("handler", Arc::new(|_ctx, _| Ok(1)))
            .build();
        let ried_b = RiedBuilder::new("impl")
            .export_fn("handler", Arc::new(|_ctx, _| Ok(2)))
            .build();
        let mut ns_a = LinkerNamespace::new();
        let mut ns_b = LinkerNamespace::new();
        ns_a.load_ried(&ried_a, false).unwrap();
        ns_b.load_ried(&ried_b, false).unwrap();
        // Both namespaces resolve the same symbolic GOT, to different bindings.
        let got_a = ns_a.resolve_got(&[SymbolRef::func("handler")]).unwrap();
        let got_b = ns_b.resolve_got(&[SymbolRef::func("handler")]).unwrap();
        assert!(got_a.fully_resolved() && got_b.fully_resolved());
        use twochains_jamvm::externs::ExternCtx;
        use twochains_jamvm::memory::AddressSpace;
        use twochains_memsim::hierarchy::FlatMemory;
        let mut space = AddressSpace::new();
        let mut bus = FlatMemory::free();
        let mut ctx = ExternCtx {
            space: &mut space,
            bus: &mut bus,
            core: 0,
            elapsed: Default::default(),
        };
        let idx_a = match got_a.get(0) {
            ExternRef::Resolved(i) => i,
            _ => unreachable!(),
        };
        let idx_b = match got_b.get(0) {
            ExternRef::Resolved(i) => i,
            _ => unreachable!(),
        };
        assert_eq!(ns_a.externs().call(idx_a, &mut ctx, &[]).unwrap(), 1);
        assert_eq!(ns_b.externs().call(idx_b, &mut ctx, &[]).unwrap(), 2);
    }
}
