//! Rieds — Relocatable Interface Distributions.
//!
//! "Rieds are shared libraries that one process drives over to some remote process to
//! dynamically setup interfaces and data objects as needed" (§IV-A). In this
//! reproduction a ried is a named bundle of:
//!
//! * **function exports** — receiver-side implementations (Rust closures over the jam
//!   VM's [`twochains_jamvm::externs::ExternCtx`]) that injected code reaches through GOT-resolved
//!   `CallExtern`; these stand in for the shared library's native code, and
//! * **data exports** — named heap objects (tables, arrays, counters) that are mapped
//!   into the jam address space as segments, with an initial size/contents, and
//! * an optional **auto-init hook** run when the ried is loaded into a namespace
//!   (the paper's rieds are "loaded and auto-initialized in Two-Chains packages").
//!
//! Rieds are constructed programmatically with [`RiedBuilder`]; the real system would
//! `dlopen` an actual shared object, which is precisely the part a memory-safe
//! reproduction replaces.

use std::sync::Arc;

use twochains_jamvm::externs::ExternFn;
use twochains_jamvm::SegmentKind;

/// A named data object exported by a ried.
#[derive(Debug, Clone)]
pub struct RiedDataExport {
    /// Canonical symbol name (e.g. `"array.base"`).
    pub name: String,
    /// Initial contents; its length is the object's size.
    pub init: Vec<u8>,
    /// Whether jams may write to it.
    pub writable: bool,
    /// Segment classification when mapped.
    pub kind: SegmentKind,
}

/// Init hook signature: receives the ried's name; used to prime data or log loading.
pub type RiedInitHook = Arc<dyn Fn(&str) + Send + Sync>;

/// A loadable interface library.
#[derive(Clone)]
pub struct Ried {
    name: String,
    functions: Vec<(String, ExternFn)>,
    data: Vec<RiedDataExport>,
    init: Option<RiedInitHook>,
    version: u32,
}

impl std::fmt::Debug for Ried {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ried")
            .field("name", &self.name)
            .field("version", &self.version)
            .field(
                "functions",
                &self
                    .functions
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
            )
            .field(
                "data",
                &self.data.iter().map(|d| d.name.clone()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Ried {
    /// The ried's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ried's version (bumped by rebuilds; used by live-update examples).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Exported functions, in declaration order.
    pub fn functions(&self) -> &[(String, ExternFn)] {
        &self.functions
    }

    /// Exported data objects.
    pub fn data(&self) -> &[RiedDataExport] {
        &self.data
    }

    /// The auto-init hook, if any.
    pub fn init_hook(&self) -> Option<&RiedInitHook> {
        self.init.as_ref()
    }

    /// Names of every symbol (functions and data) this ried exports.
    pub fn exported_symbols(&self) -> Vec<String> {
        self.functions
            .iter()
            .map(|(n, _)| n.clone())
            .chain(self.data.iter().map(|d| d.name.clone()))
            .collect()
    }
}

/// Builder for [`Ried`]s.
pub struct RiedBuilder {
    ried: Ried,
}

impl RiedBuilder {
    /// Start building a ried called `name`.
    pub fn new(name: &str) -> Self {
        RiedBuilder {
            ried: Ried {
                name: name.to_string(),
                functions: Vec::new(),
                data: Vec::new(),
                init: None,
                version: 1,
            },
        }
    }

    /// Set the version.
    pub fn version(mut self, v: u32) -> Self {
        self.ried.version = v;
        self
    }

    /// Export a function under `name`.
    pub fn export_fn(mut self, name: &str, f: ExternFn) -> Self {
        self.ried.functions.push((name.to_string(), f));
        self
    }

    /// Export a writable heap object of `size` zero bytes.
    pub fn export_heap(mut self, name: &str, size: usize) -> Self {
        self.ried.data.push(RiedDataExport {
            name: name.to_string(),
            init: vec![0u8; size],
            writable: true,
            kind: SegmentKind::Heap,
        });
        self
    }

    /// Export a data object with explicit initial contents.
    pub fn export_data(mut self, name: &str, init: Vec<u8>, writable: bool) -> Self {
        self.ried.data.push(RiedDataExport {
            name: name.to_string(),
            init,
            writable,
            kind: if writable {
                SegmentKind::Heap
            } else {
                SegmentKind::Rodata
            },
        });
        self
    }

    /// Attach an auto-init hook.
    pub fn on_load(mut self, hook: RiedInitHook) -> Self {
        self.ried.init = Some(hook);
        self
    }

    /// Finish building.
    pub fn build(self) -> Ried {
        self.ried
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_collects_exports() {
        let ried = RiedBuilder::new("ried_array")
            .version(3)
            .export_fn("array.append", Arc::new(|_ctx, _args| Ok(0)))
            .export_heap("array.base", 4096)
            .export_data("array.magic", vec![1, 2, 3], false)
            .build();
        assert_eq!(ried.name(), "ried_array");
        assert_eq!(ried.version(), 3);
        assert_eq!(ried.functions().len(), 1);
        assert_eq!(ried.data().len(), 2);
        assert_eq!(
            ried.exported_symbols(),
            vec!["array.append", "array.base", "array.magic"]
        );
        assert!(ried.data()[0].writable);
        assert!(!ried.data()[1].writable);
        assert_eq!(ried.data()[0].init.len(), 4096);
    }

    #[test]
    fn init_hook_runs_when_invoked() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let ried = RiedBuilder::new("ried_counter")
            .on_load(Arc::new(move |_name| {
                c2.fetch_add(1, Ordering::SeqCst);
            }))
            .build();
        assert!(ried.init_hook().is_some());
        (ried.init_hook().unwrap())(ried.name());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn debug_output_names_exports() {
        let ried = RiedBuilder::new("r").export_heap("h", 8).build();
        let dbg = format!("{ried:?}");
        assert!(dbg.contains("\"h\""));
    }
}
