//! # twochains-fabric
//!
//! A simulated RDMA fabric standing in for the paper's ConnectX-6 200 Gb/s InfiniBand
//! HCAs connected back-to-back between two Arm servers.
//!
//! The Two-Chains runtime only relies on a small set of RDMA semantics, all of which
//! are implemented here:
//!
//! * **Registered memory regions** with 32-bit remote access keys (RKEYs) derived
//!   from the virtual address and the granted permissions, validated in "hardware"
//!   on every remote access ([`rkey`], [`region`]).
//! * **One-sided operations**: `put` (RDMA write), `get` (RDMA read) and a fetching
//!   atomic add, issued through [`endpoint::Endpoint`]s (queue pairs).
//! * **Write ordering** between puts on the same endpoint, or explicit
//!   [`endpoint::Endpoint::fence`] when the platform does not guarantee ordering —
//!   the paper's testbed enforces ordering, so the default config does too.
//! * **Delivery into the memory hierarchy**: the simulated NIC DMA engine either
//!   stashes arriving cache lines into the destination LLC or writes them to DRAM,
//!   by calling into `twochains-memsim` ([`nic`]).
//! * **A timing model** ([`link::LinkModel`]) with LogGP-style overhead/gap terms,
//!   PCIe and wire latency, and UCX-like protocol-threshold steps, calibrated to the
//!   paper's small-message latency (~1 µs one-way) and 200 Gb/s line rate.
//! * **A UCX-put baseline** ([`baseline::UcxPutBaseline`]) reproducing the software
//!   overhead of the standard `ucp_put` + completion-tracking path that Figs. 5–6 of
//!   the paper compare against.
//! * **Seeded fault injection** ([`fault`]): a per-directed-link
//!   [`fault::FaultPlan`] makes puts drop (tx time charged, bytes never land),
//!   duplicate (a copy lands again later, as a stale replay) or reorder (two
//!   adjacent deliveries of one endpoint swap). With no plan installed the
//!   fabric keeps its default guarantees — lossless, exactly-once, per-endpoint
//!   ordered delivery — and every fault counter is zero by construction.
//!
//! Data movement is real — bytes are copied into the destination region's buffer and
//! can be read back — while all latencies are virtual [`SimTime`] values.
//!
//! ## Delivery guarantees
//!
//! Per-endpoint ordering is the contract the runtime's mailbox protocol leans on:
//! puts issued on one endpoint become visible at the destination in issue order
//! ([`Endpoint::put`] publishes each frame's final byte with `Release` ordering),
//! so a receiver that observes a frame knows every earlier frame from the same
//! endpoint already landed. [`Endpoint::put_unordered`] deliberately drops the
//! publish step, modelling fabrics without inter-put ordering; there, a fence plus
//! a separate signal put rebuilds the guarantee. Fault injection perturbs exactly
//! this contract (multiplicity and adjacent order), which is what the runtime's
//! NACK/retransmit and replay-suppression layers are tested against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod completion;
pub mod endpoint;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod link;
pub mod nic;
pub mod region;
pub mod rkey;

pub use baseline::UcxPutBaseline;
pub use completion::{Completion, CompletionQueue, ShardedCompletions};
pub use endpoint::{Endpoint, PutOutcome};
pub use error::{FabricError, FabricResult};
pub use fabric::{FabricConfig, HostHandle, HostId, SimFabric};
pub use fault::{FaultPlan, FaultSnapshot};
pub use link::{LinkModel, LinkTiming, Protocol};
pub use nic::NicModel;
pub use region::{MemoryRegion, RegionDescriptor};
pub use rkey::{AccessFlags, RKey};

pub use twochains_memsim::{SimClock, SimTime};
