//! The UCX-put baseline ("Data put") that Figs. 5–6 compare against.
//!
//! The paper's first experiment verifies that the Two-Chains reactive mailbox adds no
//! latency over a plain `ucp_put`, and actually *improves* streaming bandwidth by
//! 1.79×–4.48× because "the standard UCX put operation has more library overhead for
//! flow control and detecting message completion" (§VII).
//!
//! [`UcxPutBaseline`] models that software overhead on top of the same
//! [`LinkModel`] the Two-Chains path uses:
//!
//! * **Latency path** — a put measured by the perftest needs the remote data to be
//!   observable; the library adds a small per-operation bookkeeping cost and, for
//!   eager copy-based (bcopy) sizes, a bounce-buffer copy on the send side, a slice
//!   of which lands on the critical path.
//! * **Streaming path** — every posted put eventually requires harvesting a
//!   completion and running the library's flow-control window logic; this per-message
//!   software gap, not the wire, is what bounds the baseline's message rate for small
//!   and medium messages.

use twochains_memsim::SimTime;

use crate::completion::CompletionQueue;
use crate::link::LinkModel;

/// Model of the plain UCX `ucp_put_nbi` + completion path.
#[derive(Debug, Clone)]
pub struct UcxPutBaseline {
    link: LinkModel,
    /// Per-operation library bookkeeping on the critical (latency) path.
    lat_overhead: SimTime,
    /// Per-operation flow-control + completion-harvest cost on the streaming path.
    stream_overhead: SimTime,
    /// Send-side bounce-buffer copy bandwidth for bcopy-eligible sizes (bytes/ns).
    bcopy_bytes_per_ns: f64,
    /// Sizes at or below this use the copy-based eager path.
    bcopy_max: usize,
    /// Fraction of the bounce copy that is exposed on the latency critical path
    /// (the rest overlaps with the DMA read).
    bcopy_exposed: f64,
}

impl UcxPutBaseline {
    /// Baseline with overheads representative of a tuned UCX over the given link.
    pub fn new(link: LinkModel) -> Self {
        UcxPutBaseline {
            link,
            lat_overhead: SimTime::from_ns(90),
            stream_overhead: SimTime::from_ns(600),
            bcopy_bytes_per_ns: 7.0,
            bcopy_max: 8192,
            bcopy_exposed: 0.08,
        }
    }

    /// The underlying link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Bounce-buffer copy time for a message of `size` bytes (zero for zcopy sizes).
    fn bcopy_time(&self, size: usize) -> SimTime {
        if size <= self.bcopy_max {
            SimTime::from_ns_f64(size as f64 / self.bcopy_bytes_per_ns)
        } else {
            SimTime::ZERO
        }
    }

    /// One-way latency of a UCX data put of `size` bytes, as the perftest measures it.
    pub fn put_latency(&self, size: usize) -> SimTime {
        let t = self.link.put_timing(size);
        t.one_way() + self.lat_overhead + self.bcopy_time(size) * self.bcopy_exposed
    }

    /// Minimum inter-message gap in a streaming (bandwidth / message-rate) test:
    /// the software per-message cost or the wire serialization, whichever is larger.
    pub fn stream_gap(&self, size: usize) -> SimTime {
        let wire_gap = self.link.put_timing(size).gap;
        let software_gap = self.stream_overhead + self.bcopy_time(size);
        wire_gap.max(software_gap)
    }

    /// Streaming bandwidth in MiB/s for messages of `size` bytes.
    pub fn bandwidth_mib_s(&self, size: usize) -> f64 {
        let gap = self.stream_gap(size);
        let bytes_per_ns = size as f64 / gap.as_ns();
        bytes_per_ns * 1e9 / (1024.0 * 1024.0)
    }

    /// Streaming message rate in messages/s for messages of `size` bytes.
    pub fn message_rate(&self, size: usize) -> f64 {
        1e9 / self.stream_gap(size).as_ns()
    }

    /// Build a completion queue with this baseline's harvest cost (used when the
    /// baseline is driven operation-by-operation rather than analytically).
    pub fn completion_queue(&self) -> CompletionQueue {
        CompletionQueue::ucx_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> UcxPutBaseline {
        UcxPutBaseline::new(LinkModel::connectx6_back_to_back())
    }

    #[test]
    fn latency_close_to_raw_link_latency() {
        let b = baseline();
        for &size in &[256usize, 1024, 4096, 32768] {
            let raw = b.link().put_timing(size).one_way();
            let ucx = b.put_latency(size);
            let overhead = (ucx.as_ns() - raw.as_ns()) / raw.as_ns();
            assert!(
                overhead > 0.0 && overhead < 0.15,
                "size {size}: overhead {overhead}"
            );
        }
    }

    #[test]
    fn small_message_rate_is_software_bound() {
        let b = baseline();
        let gap = b.stream_gap(256);
        assert!(
            gap >= SimTime::from_ns(500),
            "small messages pay the library overhead: {gap}"
        );
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let b = baseline();
        let bw_small = b.bandwidth_mib_s(256);
        let bw_large = b.bandwidth_mib_s(32 * 1024);
        assert!(bw_large > bw_small * 5.0, "{bw_small} vs {bw_large}");
        // Order of magnitude check against the paper's Fig. 6 (10^3..10^4 MB/s band).
        assert!(bw_small > 100.0 && bw_small < 2_000.0, "got {bw_small}");
        assert!(bw_large > 3_000.0 && bw_large < 20_000.0, "got {bw_large}");
    }

    #[test]
    fn message_rate_is_inverse_of_gap() {
        let b = baseline();
        let rate = b.message_rate(1024);
        let gap = b.stream_gap(1024);
        assert!((rate * gap.as_ns() / 1e9 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zcopy_sizes_skip_the_bounce_copy() {
        let b = baseline();
        // Just below and just above the bcopy threshold: the larger message should
        // not pay proportionally more software time.
        let below = b.stream_gap(8192);
        let above = b.stream_gap(16384);
        // 16KiB wire time is ~1.2us which exceeds software gap; ensure the software
        // component did not balloon.
        assert!(above.as_ns() < below.as_ns() * 2.0);
    }
}
