//! Endpoints (queue pairs) and one-sided operations.
//!
//! An [`Endpoint`] connects a source host to a destination host and exposes the
//! one-sided operations Two-Chains relies on: `put` (RDMA write), `get` (RDMA read),
//! a fetch-and-add atomic, `fence` and `flush`. Data movement is real — the bytes are
//! copied into the destination's registered region — and every operation returns the
//! virtual-time accounting the benchmarks use.
//!
//! ## Thread placement
//!
//! An `Endpoint` is `Send`: every shared structure it references (host region
//! table, NIC serialization points, the cache hierarchy the DMA engine installs
//! into) is internally synchronized, so a multi-sender runtime can park one
//! endpoint per sender thread over the same [`SimFabric`](crate::fabric::SimFabric).
//! Puts issued concurrently from different endpoints of the same source host
//! still serialize on that host's transmit pipeline
//! ([`NicModel::acquire_tx`](crate::nic::NicModel::acquire_tx)) in virtual
//! time — overlapped puts are charged the wire contention they would really
//! cost, never a free ride.
//!
//! ## Write ordering and signals
//!
//! The paper's mailbox protocol relies on the receiver observing the *last* byte of
//! the frame (the `SIG MAG` magic) only after all preceding bytes are visible. On
//! fabrics that guarantee ordering (the paper's testbed does) the whole frame can go
//! in one put; otherwise the signal must be a separate put preceded by a fence. Both
//! modes are supported: [`Endpoint::put`] publishes the final byte of every write
//! with `Release` ordering, and [`Endpoint::put_unordered`] + [`Endpoint::fence`] +
//! separate signal puts model the conservative path.

use std::sync::Arc;

use twochains_memsim::SimTime;

use crate::error::{FabricError, FabricResult};
use crate::fabric::HostState;
use crate::fault::{DeferredPut, EndpointFaults, FaultAction};
use crate::link::LinkModel;
use crate::region::{MemoryRegion, RegionDescriptor};
use crate::rkey::check_permission;

/// Timing outcome of a one-sided operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// When the initiating CPU is free again (posting overhead done).
    pub sender_free: SimTime,
    /// When the data (including the signal byte, if any) is visible to the
    /// destination CPU.
    pub delivered: SimTime,
    /// DMA-engine time spent installing the data (stash or DRAM path); already
    /// included in `delivered`, broken out for statistics.
    pub dma_cost: SimTime,
    /// Number of payload bytes moved.
    pub bytes: usize,
}

/// A one-sided communication endpoint from a source host to a destination host.
pub struct Endpoint {
    link: LinkModel,
    src: Arc<HostState>,
    dst: Arc<HostState>,
    /// Completion horizon: when every operation issued so far is delivered.
    last_delivered: SimTime,
    /// Statistics: operations and bytes issued.
    ops: u64,
    bytes: u64,
    /// Fault-injection state captured at creation time when a
    /// [`FaultPlan`](crate::fault::FaultPlan) is installed on this link.
    faults: Option<EndpointFaults>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("src", &self.src.id)
            .field("dst", &self.dst.id)
            .field("ops", &self.ops)
            .finish()
    }
}

impl Endpoint {
    pub(crate) fn new(
        link: LinkModel,
        src: Arc<HostState>,
        dst: Arc<HostState>,
        faults: Option<EndpointFaults>,
    ) -> Self {
        Endpoint {
            link,
            src,
            dst,
            last_delivered: SimTime::ZERO,
            ops: 0,
            bytes: 0,
            faults,
        }
    }

    /// Whether this endpoint was created under an installed
    /// [`FaultPlan`](crate::fault::FaultPlan) — i.e. its puts may be dropped,
    /// duplicated or reordered. Senders use this to arm their retransmit
    /// machinery only when it can ever be needed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The link model this endpoint uses.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Source host id.
    pub fn source(&self) -> usize {
        self.src.id.index()
    }

    /// Destination host id.
    pub fn destination(&self) -> usize {
        self.dst.id.index()
    }

    /// Number of operations issued.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Number of payload bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn validate(
        &self,
        desc: &RegionDescriptor,
        offset: usize,
        len: usize,
        op: &'static str,
    ) -> FabricResult<Arc<crate::region::MemoryRegion>> {
        if desc.host != self.dst.id.index() {
            return Err(FabricError::NotConnected {
                from: self.src.id.index(),
                to: desc.host,
            });
        }
        let region = self.dst.find_region(desc.base_addr, desc.len)?;
        // The HCA validates the presented rkey against the memory region's key and
        // checks the granted permissions before touching memory.
        region.rkey().validate(desc.rkey)?;
        check_permission(region.flags(), op)?;
        if offset + len > region.len() {
            return Err(FabricError::OutOfBounds {
                offset,
                len,
                region_len: region.len(),
            });
        }
        Ok(region)
    }

    /// One-sided put of `data` into the remote region described by `desc`, at
    /// `offset`, issued at virtual time `now`. The final byte is published with
    /// `Release` ordering so a receiver polling it with `Acquire` observes the whole
    /// frame — the ordered-delivery fast path (§III-A, "Modern servers ... enforce
    /// ordering ... so we can send the entire message in one put operation").
    pub fn put(
        &mut self,
        now: SimTime,
        data: &[u8],
        desc: &RegionDescriptor,
        offset: usize,
    ) -> FabricResult<PutOutcome> {
        self.put_inner(now, data, desc, offset, true)
    }

    /// A put that does *not* publish its last byte with release ordering, modelling a
    /// fabric without inter-put ordering guarantees. Use [`Endpoint::fence`] and a
    /// separate signal put ([`Endpoint::put`] of the signal byte) to build the
    /// conservative protocol.
    pub fn put_unordered(
        &mut self,
        now: SimTime,
        data: &[u8],
        desc: &RegionDescriptor,
        offset: usize,
    ) -> FabricResult<PutOutcome> {
        self.put_inner(now, data, desc, offset, false)
    }

    fn put_inner(
        &mut self,
        now: SimTime,
        data: &[u8],
        desc: &RegionDescriptor,
        offset: usize,
        publish: bool,
    ) -> FabricResult<PutOutcome> {
        if data.is_empty() {
            return Err(FabricError::InvalidArgument("empty put"));
        }
        let region = self.validate(desc, offset, data.len(), "put")?;
        let timing = self.link.put_timing(data.len());

        // Sender CPU posts the work request, rings the doorbell.
        let sender_free = now + timing.sender_cpu;
        // The transmit pipeline serializes messages (streaming gap).
        let (wire_start, _tx_free) = self.src.nic.acquire_tx(sender_free, &timing);
        let arrival = wire_start + timing.network;
        // Receiver-side DMA installs the data (stash or DRAM) and serializes with
        // other inbound traffic.
        let dst_addr = desc.base_addr + offset as u64;
        let (delivered, dma_cost) = if self.faults.is_some() {
            self.deliver_faulty(&region, offset, data, publish, arrival, dst_addr)?
        } else {
            let (delivered, dma_cost) = self.dst.nic.deliver(arrival, dst_addr, data.len());
            Self::land(&region, offset, data, publish)?;
            (delivered, dma_cost)
        };

        self.ops += 1;
        self.bytes += data.len() as u64;
        self.last_delivered = self.last_delivered.max(delivered);
        Ok(PutOutcome {
            sender_free,
            delivered,
            dma_cost,
            bytes: data.len(),
        })
    }

    /// Move the actual bytes into the destination region, publishing the final
    /// byte with `Release` ordering when asked.
    fn land(
        region: &Arc<MemoryRegion>,
        offset: usize,
        data: &[u8],
        publish: bool,
    ) -> FabricResult<()> {
        region.write(offset, data)?;
        if publish {
            let last = offset + data.len() - 1;
            region.store_release_u8(last, data[data.len() - 1])?;
        }
        Ok(())
    }

    /// The delivery half of a put on a faulty link. The transmit side has
    /// already been charged (a dropped put consumes its tx-pipeline time like
    /// any other), so this decides what actually lands and when:
    ///
    /// 1. duplicate copies deferred by earlier puts land first (they can never
    ///    clobber the current put's bytes),
    /// 2. the current put rolls the die — delivered, dropped, duplicated (copy
    ///    deferred) or held (deferred whole),
    /// 3. originals held by earlier reorder faults land last, completing the
    ///    adjacent-delivery swap.
    fn deliver_faulty(
        &mut self,
        region: &Arc<MemoryRegion>,
        offset: usize,
        data: &[u8],
        publish: bool,
        arrival: SimTime,
        dst_addr: u64,
    ) -> FabricResult<(SimTime, SimTime)> {
        let (dups, held) = {
            let f = self.faults.as_mut().expect("checked by caller");
            (std::mem::take(&mut f.dups), std::mem::take(&mut f.held))
        };
        for d in dups {
            self.dst.nic.deliver(arrival, d.dst_addr, d.data.len());
            Self::land(&d.region, d.offset, &d.data, d.publish)?;
            self.faults
                .as_ref()
                .expect("checked by caller")
                .note_redelivered();
        }
        let action = self.faults.as_mut().expect("checked by caller").roll();
        let outcome = match action {
            FaultAction::Drop => (arrival, SimTime::ZERO),
            FaultAction::Hold => {
                let deferred = DeferredPut {
                    region: Arc::clone(region),
                    offset,
                    dst_addr,
                    data: data.to_vec(),
                    publish,
                };
                self.faults
                    .as_mut()
                    .expect("checked by caller")
                    .held
                    .push(deferred);
                // The sender observes the timing it would have seen: it cannot
                // tell a held (or lost) put from a delivered one.
                (arrival, SimTime::ZERO)
            }
            FaultAction::Duplicate => {
                let (delivered, dma_cost) = self.dst.nic.deliver(arrival, dst_addr, data.len());
                Self::land(region, offset, data, publish)?;
                let deferred = DeferredPut {
                    region: Arc::clone(region),
                    offset,
                    dst_addr,
                    data: data.to_vec(),
                    publish,
                };
                self.faults
                    .as_mut()
                    .expect("checked by caller")
                    .dups
                    .push(deferred);
                (delivered, dma_cost)
            }
            FaultAction::Deliver => {
                let (delivered, dma_cost) = self.dst.nic.deliver(arrival, dst_addr, data.len());
                Self::land(region, offset, data, publish)?;
                (delivered, dma_cost)
            }
        };
        for h in held {
            self.dst.nic.deliver(arrival, h.dst_addr, h.data.len());
            Self::land(&h.region, h.offset, &h.data, h.publish)?;
            self.faults
                .as_ref()
                .expect("checked by caller")
                .note_redelivered();
        }
        Ok(outcome)
    }

    /// A put whose completion is tracked in `cq`: the entry becomes harvestable at
    /// the put's `delivered` time. Refused with
    /// [`FabricError::CompletionBackpressure`] when the queue is full — the
    /// initiator must poll completions before posting more, which is exactly the
    /// transmit-queue back-pressure a streaming sender runs against. With a
    /// [`ShardedCompletions`](crate::completion::ShardedCompletions) queue per
    /// receiver shard, this gives a sharded sender per-shard flow control.
    pub fn put_tracked(
        &mut self,
        now: SimTime,
        data: &[u8],
        desc: &RegionDescriptor,
        offset: usize,
        cq: &mut crate::completion::CompletionQueue,
    ) -> FabricResult<(u64, PutOutcome)> {
        if cq.outstanding() >= cq.capacity() {
            return Err(FabricError::CompletionBackpressure {
                capacity: cq.capacity(),
            });
        }
        let outcome = self.put(now, data, desc, offset)?;
        let id = cq
            .post(outcome.delivered)
            .expect("queue had room: checked above");
        Ok((id, outcome))
    }

    /// One-sided get (RDMA read) of `len` bytes from the remote region.
    pub fn get(
        &mut self,
        now: SimTime,
        desc: &RegionDescriptor,
        offset: usize,
        len: usize,
    ) -> FabricResult<(Vec<u8>, PutOutcome)> {
        if len == 0 {
            return Err(FabricError::InvalidArgument("empty get"));
        }
        let region = self.validate(desc, offset, len, "get")?;
        let timing = self.link.get_timing(len);
        let sender_free = now + timing.sender_cpu;
        let (wire_start, _tx_free) = self.src.nic.acquire_tx(sender_free, &timing);
        let delivered = wire_start + timing.network;
        let data = region.read(offset, len)?;
        self.ops += 1;
        self.bytes += len as u64;
        self.last_delivered = self.last_delivered.max(delivered);
        Ok((
            data,
            PutOutcome {
                sender_free,
                delivered,
                dma_cost: SimTime::ZERO,
                bytes: len,
            },
        ))
    }

    /// Remote fetch-and-add on an 8-byte-aligned offset. Returns the previous value.
    pub fn atomic_add(
        &mut self,
        now: SimTime,
        desc: &RegionDescriptor,
        offset: usize,
        operand: u64,
    ) -> FabricResult<(u64, PutOutcome)> {
        let region = self.validate(desc, offset, 8, "atomic")?;
        let timing = self.link.get_timing(8); // atomics are round-trip operations
        let sender_free = now + timing.sender_cpu;
        let (wire_start, _tx_free) = self.src.nic.acquire_tx(sender_free, &timing);
        let delivered = wire_start + timing.network;
        let old = region.fetch_add_u64(offset, operand)?;
        self.ops += 1;
        self.bytes += 8;
        self.last_delivered = self.last_delivered.max(delivered);
        Ok((
            old,
            PutOutcome {
                sender_free,
                delivered,
                dma_cost: SimTime::ZERO,
                bytes: 8,
            },
        ))
    }

    /// Issue a fence: subsequent operations are not delivered before all preceding
    /// ones. On an ordered fabric this is free; on an unordered one it costs a small
    /// fixed overhead and pushes the ordering horizon forward.
    pub fn fence(&mut self, now: SimTime) -> SimTime {
        if self.link.ordered_delivery {
            now
        } else {
            // The fence forces the initiator to wait for prior deliveries before
            // posting the next operation.
            self.last_delivered.max(now) + SimTime::from_ns(40)
        }
    }

    /// Wait (in virtual time) until every operation issued so far has been delivered.
    pub fn flush(&self, now: SimTime) -> SimTime {
        self.last_delivered.max(now)
    }

    /// Reset timing/ordering state between benchmark phases (the data already written
    /// to remote regions is untouched).
    pub fn reset(&mut self) {
        self.last_delivered = SimTime::ZERO;
        self.ops = 0;
        self.bytes = 0;
        self.src.nic.reset();
        self.dst.nic.reset();
        if let Some(f) = self.faults.as_mut() {
            f.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{HostId, SimFabric};
    use crate::rkey::{AccessFlags, RKey};
    use twochains_memsim::TestbedConfig;

    fn setup() -> (SimFabric, HostId, HostId) {
        SimFabric::back_to_back(TestbedConfig::tiny_for_tests())
    }

    #[test]
    fn put_moves_bytes_and_reports_timing() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rwx())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let out = ep
            .put(SimTime::ZERO, b"function injection", &desc, 100)
            .unwrap();
        assert_eq!(dst_region.read(100, 18).unwrap(), b"function injection");
        assert!(out.delivered > out.sender_free);
        assert!(
            out.delivered > SimTime::from_ns(900),
            "one-way should be ~1us, got {}",
            out.delivered
        );
        assert_eq!(out.bytes, 18);
        assert_eq!(ep.ops(), 1);
        assert_eq!(ep.bytes(), 18);
    }

    #[test]
    fn put_with_wrong_rkey_is_rejected() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rwx())
            .unwrap();
        let mut desc = dst_region.descriptor();
        desc.rkey = RKey(desc.rkey.raw() ^ 0xFFFF);
        let mut ep = fabric.endpoint(a, b).unwrap();
        let err = ep.put(SimTime::ZERO, b"x", &desc, 0).unwrap_err();
        assert!(matches!(err, FabricError::InvalidRkey { .. }));
    }

    #[test]
    fn put_to_readonly_region_is_rejected() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::ro())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        assert!(matches!(
            ep.put(SimTime::ZERO, b"x", &desc, 0),
            Err(FabricError::PermissionDenied { .. })
        ));
        // but gets are fine
        assert!(ep.get(SimTime::ZERO, &desc, 0, 16).is_ok());
    }

    #[test]
    fn out_of_bounds_put_is_rejected() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(64, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        assert!(matches!(
            ep.put(SimTime::ZERO, &[0u8; 65], &desc, 0),
            Err(FabricError::OutOfBounds { .. })
        ));
        assert!(ep.put(SimTime::ZERO, &[0u8; 64], &desc, 0).is_ok());
    }

    #[test]
    fn get_reads_remote_memory() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(128, AccessFlags::rw())
            .unwrap();
        dst_region.write(0, b"remote state").unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let (data, out) = ep.get(SimTime::ZERO, &desc, 0, 12).unwrap();
        assert_eq!(data, b"remote state");
        assert!(
            out.delivered > SimTime::from_ns(1000),
            "get is a round trip"
        );
    }

    #[test]
    fn atomic_add_round_trips() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(64, AccessFlags::rwx())
            .unwrap();
        dst_region.store_u64(8, 100).unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let (old, _) = ep.atomic_add(SimTime::ZERO, &desc, 8, 5).unwrap();
        assert_eq!(old, 100);
        assert_eq!(dst_region.load_u64(8).unwrap(), 105);
        assert!(matches!(
            ep.atomic_add(SimTime::ZERO, &desc, 3, 1),
            Err(FabricError::Misaligned { .. })
        ));
    }

    #[test]
    fn larger_puts_take_longer() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(64 * 1024, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let small = ep.put(SimTime::ZERO, &[1u8; 64], &desc, 0).unwrap();
        ep.reset();
        let large = ep.put(SimTime::ZERO, &[1u8; 32 * 1024], &desc, 0).unwrap();
        assert!(large.delivered > small.delivered);
    }

    #[test]
    fn flush_reports_completion_horizon() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(8192, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        assert_eq!(ep.flush(SimTime::from_ns(5)), SimTime::from_ns(5));
        let o1 = ep.put(SimTime::ZERO, &[0u8; 4096], &desc, 0).unwrap();
        let o2 = ep.put(o1.sender_free, &[0u8; 4096], &desc, 4096).unwrap();
        assert_eq!(ep.flush(SimTime::ZERO), o2.delivered.max(o1.delivered));
    }

    #[test]
    fn put_tracked_posts_completion_and_applies_backpressure() {
        use crate::completion::CompletionQueue;
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let mut cq = CompletionQueue::new(2, SimTime::from_ns(5));
        let (id0, out0) = ep
            .put_tracked(SimTime::ZERO, &[1u8; 64], &desc, 0, &mut cq)
            .unwrap();
        let (id1, out1) = ep
            .put_tracked(out0.sender_free, &[2u8; 64], &desc, 64, &mut cq)
            .unwrap();
        assert!(id1 > id0);
        assert_eq!(cq.outstanding(), 2);
        // Queue full: the third tracked put is refused, and nothing was written.
        let err = ep
            .put_tracked(out1.sender_free, &[3u8; 64], &desc, 128, &mut cq)
            .unwrap_err();
        assert!(matches!(
            err,
            FabricError::CompletionBackpressure { capacity: 2 }
        ));
        assert_eq!(dst_region.read(128, 1).unwrap(), vec![0]);
        // Harvesting at the delivery horizon frees the queue.
        let (done, _) = cq.poll(out1.delivered);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].ready_at, out0.delivered);
        assert!(ep
            .put_tracked(out1.sender_free, &[3u8; 64], &desc, 128, &mut cq)
            .is_ok());
    }

    /// The sender fleet moves one endpoint per sender thread; this does not
    /// compile unless every host structure an endpoint references is `Sync`.
    #[test]
    fn endpoint_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Endpoint>();
        assert_send::<crate::completion::CompletionQueue>();
        assert_send::<crate::completion::ShardedCompletions>();
    }

    #[test]
    fn concurrent_puts_share_the_tx_pipeline_honestly() {
        // Two sender threads, each with its own endpoint from the same source
        // host, blast puts "simultaneously" (all posted at virtual time zero).
        // The shared NIC must serialize them in virtual time: a put issued
        // after both threads join cannot start before ~2N transmit gaps have
        // been consumed, i.e. overlapped puts are charged wire contention
        // instead of each stream pretending it owns the NIC.
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(64 * 1024, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let n = 25usize;
        let size = 1024usize;
        std::thread::scope(|s| {
            for t in 0..2usize {
                let mut ep = fabric.endpoint(a, b).unwrap();
                s.spawn(move || {
                    for i in 0..n {
                        ep.put(
                            SimTime::ZERO,
                            &vec![t as u8; size],
                            &desc,
                            (t * n + i) * size,
                        )
                        .unwrap();
                    }
                });
            }
        });
        let mut ep = fabric.endpoint(a, b).unwrap();
        let out = ep.put(SimTime::ZERO, &[9u8; 1024], &desc, 0).unwrap();
        let gap = ep.link().put_timing(size).gap;
        assert!(
            out.delivered >= gap * (2 * n) as u64,
            "the 51st put must queue behind 50 transmit gaps ({} < {})",
            out.delivered,
            gap * (2 * n) as u64
        );
    }

    #[test]
    fn fence_is_free_on_ordered_fabric() {
        let (fabric, a, b) = setup();
        let mut ep = fabric.endpoint(a, b).unwrap();
        assert_eq!(ep.fence(SimTime::from_ns(10)), SimTime::from_ns(10));
    }

    #[test]
    fn fence_waits_on_unordered_fabric() {
        use crate::fabric::FabricConfig;
        let mut cfg = FabricConfig::default();
        cfg.link.ordered_delivery = false;
        let fabric = SimFabric::new(cfg);
        let a = fabric.add_host(TestbedConfig::tiny_for_tests());
        let b = fabric.add_host(TestbedConfig::tiny_for_tests());
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let out = ep
            .put_unordered(SimTime::ZERO, &[7u8; 1024], &desc, 0)
            .unwrap();
        let after_fence = ep.fence(out.sender_free);
        assert!(
            after_fence >= out.delivered,
            "fence must wait for outstanding puts"
        );
    }

    /// Satellite contract: `put`s issued on one endpoint become visible in
    /// issue order — later puts are never delivered earlier — which is the
    /// foundation the receiver's sequence-gap detection stands on.
    #[test]
    fn puts_on_one_endpoint_deliver_in_issue_order() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let mut now = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        for i in 0..8u8 {
            let out = ep.put(now, &[i; 64], &desc, 0).unwrap();
            assert!(
                out.delivered >= prev,
                "put {i} delivered before its predecessor"
            );
            prev = out.delivered;
            now = out.sender_free;
        }
        // Last writer wins at the destination: issue order is delivery order.
        assert_eq!(dst_region.read(0, 1).unwrap(), vec![7]);
        // On the ordered fabric the visibility guarantee costs no fence.
        assert_eq!(ep.fence(now), now);
    }

    /// Satellite contract: `put_unordered` moves the bytes but grants no
    /// inter-put ordering — the initiator must fence before the signal put, and
    /// the fence is what waits for outstanding deliveries.
    #[test]
    fn put_unordered_requires_a_fence_before_the_signal() {
        use crate::fabric::FabricConfig;
        let mut cfg = FabricConfig::default();
        cfg.link.ordered_delivery = false;
        let fabric = SimFabric::new(cfg);
        let a = fabric.add_host(TestbedConfig::tiny_for_tests());
        let b = fabric.add_host(TestbedConfig::tiny_for_tests());
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let body = ep
            .put_unordered(SimTime::ZERO, &[1u8; 256], &desc, 0)
            .unwrap();
        // The bytes themselves move (data path is real)...
        assert_eq!(dst_region.read(0, 1).unwrap(), vec![1]);
        // ...but the signal may not be posted until a fence has waited for the
        // body: the fence horizon covers the body's delivery.
        let fenced = ep.fence(body.sender_free);
        assert!(fenced >= body.delivered);
        let sig = ep.put(fenced, &[0xC3], &desc, 255).unwrap();
        assert!(sig.delivered > body.delivered);
    }

    #[test]
    fn dropped_puts_charge_tx_time_but_never_land() {
        use crate::fault::FaultPlan;
        let (fabric, a, b) = setup();
        fabric
            .install_fault_plan(a, b, FaultPlan::drop_only(1.0, 11))
            .unwrap();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        assert!(ep.faults_enabled());
        let out = ep.put(SimTime::ZERO, &[9u8; 128], &desc, 0).unwrap();
        // The sender cannot tell: timing looks like any other put.
        assert!(out.delivered > out.sender_free);
        assert_eq!(ep.ops(), 1);
        // But nothing landed.
        assert_eq!(dst_region.read(0, 128).unwrap(), vec![0u8; 128]);
        let snap = fabric.fault_counters(a, b).unwrap();
        assert_eq!(snap.dropped, 1);
        // The tx pipeline was still consumed: a follow-up put queues behind it.
        let timing = ep.link().put_timing(128);
        let next = ep.put(SimTime::ZERO, &[1u8; 128], &desc, 256).unwrap();
        assert!(next.delivered >= out.sender_free + timing.gap);
    }

    #[test]
    fn duplicated_put_replays_after_the_receiver_consumed_it() {
        use crate::fault::FaultPlan;
        let (fabric, a, b) = setup();
        fabric
            .install_fault_plan(
                a,
                b,
                FaultPlan {
                    drop: 0.0,
                    duplicate: 1.0,
                    reorder: 0.0,
                    seed: 5,
                },
            )
            .unwrap();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let o1 = ep.put(SimTime::ZERO, b"AAAA", &desc, 0).unwrap();
        assert_eq!(dst_region.read(0, 4).unwrap(), b"AAAA");
        // The receiver consumes and clears the slot...
        dst_region.fill(0, 4, 0).unwrap();
        // ...and the next put on the endpoint flushes the late copy first: the
        // stale frame is revived, exactly the replay the receiver must suppress.
        ep.put(o1.sender_free, b"BBBB", &desc, 64).unwrap();
        assert_eq!(dst_region.read(0, 4).unwrap(), b"AAAA");
        assert_eq!(dst_region.read(64, 4).unwrap(), b"BBBB");
        let snap = fabric.fault_counters(a, b).unwrap();
        assert_eq!(snap.duplicated, 2);
        assert_eq!(snap.redelivered, 1);
    }

    #[test]
    fn reordered_puts_swap_adjacent_deliveries() {
        use crate::fault::FaultPlan;
        let (fabric, a, b) = setup();
        fabric
            .install_fault_plan(
                a,
                b,
                FaultPlan {
                    drop: 0.0,
                    duplicate: 0.0,
                    reorder: 1.0,
                    seed: 5,
                },
            )
            .unwrap();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(4096, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        let o1 = ep.put(SimTime::ZERO, b"AAAA", &desc, 0).unwrap();
        // Held: nothing visible yet.
        assert_eq!(dst_region.read(0, 4).unwrap(), vec![0u8; 4]);
        let o2 = ep.put(o1.sender_free, b"BBBB", &desc, 0).unwrap();
        // The second put is held in turn, but flushing the first happens after
        // the second's (withheld) landing slot: the earlier put is now the one
        // visible — a swapped pair, as a later lossless write would show BBBB.
        assert_eq!(dst_region.read(0, 4).unwrap(), b"AAAA");
        ep.put(o2.sender_free, b"CCCC", &desc, 64).unwrap();
        assert_eq!(dst_region.read(0, 4).unwrap(), b"BBBB");
        let snap = fabric.fault_counters(a, b).unwrap();
        assert_eq!(snap.reordered, 3);
        assert_eq!(snap.redelivered, 2);
    }

    #[test]
    fn lossless_links_carry_no_fault_state() {
        let (fabric, a, b) = setup();
        let ep = fabric.endpoint(a, b).unwrap();
        assert!(!ep.faults_enabled());
        assert_eq!(fabric.fault_counters(a, b), None);
    }

    #[test]
    fn fault_plan_applies_only_to_its_direction() {
        use crate::fault::FaultPlan;
        let (fabric, a, b) = setup();
        fabric
            .install_fault_plan(a, b, FaultPlan::drop_only(1.0, 1))
            .unwrap();
        // The reverse link — where credits and NACKs travel — stays pristine.
        let reverse = fabric.endpoint(b, a).unwrap();
        assert!(!reverse.faults_enabled());
        let forward = fabric.endpoint(a, b).unwrap();
        assert!(forward.faults_enabled());
    }

    #[test]
    fn back_to_back_streaming_is_gap_limited() {
        let (fabric, a, b) = setup();
        let dst_region = fabric
            .host(b)
            .unwrap()
            .register(1 << 20, AccessFlags::rw())
            .unwrap();
        let desc = dst_region.descriptor();
        let mut ep = fabric.endpoint(a, b).unwrap();
        // Fire 16 x 32KiB puts back to back; delivery of the last should be roughly
        // first-latency + 15 gaps, i.e. wire-limited rather than latency x 16.
        let size = 32 * 1024;
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 0..16usize {
            let out = ep
                .put(now, &vec![0u8; size], &desc, (i % 4) * size)
                .unwrap();
            now = out.sender_free;
            last = out.delivered;
        }
        let one = ep.link().put_timing(size);
        let serial_estimate = one.one_way() + one.gap * 15;
        assert!(last.as_ns() < serial_estimate.as_ns() * 1.5);
        assert!(last > one.gap * 15);
    }
}
