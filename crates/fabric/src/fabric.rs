//! The fabric itself: hosts, registration, and endpoint creation.
//!
//! A [`SimFabric`] owns a set of hosts. Each host has a memory hierarchy (from
//! `twochains-memsim`), a NIC, a simulated virtual-address allocator, and a table of
//! registered memory regions. Hosts are connected all-to-all (the paper's testbed is
//! two hosts back-to-back, which is just the 2-host special case).

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use twochains_memsim::{CoreBus, SharedHierarchy, TestbedConfig};

use crate::endpoint::Endpoint;
use crate::error::{FabricError, FabricResult};
use crate::fault::{FaultHook, FaultPlan, FaultSnapshot};
use crate::link::LinkModel;
use crate::nic::NicModel;
use crate::region::{MemoryRegion, RegionDescriptor};
use crate::rkey::AccessFlags;

/// Identifier of a host attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

impl HostId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Link/protocol timing model shared by every endpoint.
    pub link: LinkModel,
    /// Base simulated virtual address of the first registration on each host.
    pub va_base: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            link: LinkModel::connectx6_back_to_back(),
            va_base: 0x0001_0000_0000,
        }
    }
}

/// Per-host state.
pub(crate) struct HostState {
    pub(crate) id: HostId,
    pub(crate) hierarchy: Arc<SharedHierarchy>,
    pub(crate) nic: NicModel,
    regions: Mutex<Vec<Arc<MemoryRegion>>>,
    va_cursor: Mutex<u64>,
    nonce: AtomicU32,
}

impl std::fmt::Debug for HostState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostState")
            .field("id", &self.id)
            .field("regions", &self.regions.lock().len())
            .finish()
    }
}

impl HostState {
    fn new(id: HostId, cfg: TestbedConfig, link: LinkModel, va_base: u64) -> Self {
        let hierarchy = Arc::new(SharedHierarchy::new(cfg));
        let nic = NicModel::new(link, Arc::clone(&hierarchy));
        HostState {
            id,
            hierarchy,
            nic,
            regions: Mutex::new(Vec::new()),
            va_cursor: Mutex::new(va_base),
            nonce: AtomicU32::new(1),
        }
    }

    /// Register `len` bytes with the given permissions; allocates a fresh simulated
    /// virtual address range and generates the RKEY.
    pub(crate) fn register(
        &self,
        len: usize,
        flags: AccessFlags,
    ) -> FabricResult<Arc<MemoryRegion>> {
        let base = {
            let mut cursor = self.va_cursor.lock();
            let base = *cursor;
            // Keep registrations page-aligned and spaced, like mmap'd pinned buffers.
            let advance = (len.div_ceil(4096) * 4096) as u64 + 4096;
            *cursor += advance;
            base
        };
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let region = MemoryRegion::new(self.id.index(), base, len, flags, nonce)?;
        self.regions.lock().push(Arc::clone(&region));
        Ok(region)
    }

    /// Find the registered region that fully contains `[addr, addr+len)`.
    pub(crate) fn find_region(&self, addr: u64, len: usize) -> FabricResult<Arc<MemoryRegion>> {
        let regions = self.regions.lock();
        for r in regions.iter() {
            let start = r.base_addr();
            let end = start + r.len() as u64;
            if addr >= start && addr + len as u64 <= end {
                return Ok(Arc::clone(r));
            }
        }
        Err(FabricError::NoSuchRegion(addr as u32))
    }

    /// Drop a registration (deregister the memory).
    pub(crate) fn deregister(&self, region: &Arc<MemoryRegion>) {
        self.regions.lock().retain(|r| !Arc::ptr_eq(r, region));
    }
}

struct FabricInner {
    hosts: RwLock<Vec<Arc<HostState>>>,
    config: FabricConfig,
    /// Fault plans keyed by directed link `(initiator, target)`. Endpoints
    /// capture the hook for their link at creation time (see [`crate::fault`]).
    faults: Mutex<HashMap<(usize, usize), Arc<FaultHook>>>,
}

/// The simulated RDMA fabric.
#[derive(Clone)]
pub struct SimFabric {
    inner: Arc<FabricInner>,
}

impl std::fmt::Debug for SimFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFabric")
            .field("hosts", &self.inner.hosts.read().len())
            .finish()
    }
}

impl SimFabric {
    /// Create an empty fabric.
    pub fn new(config: FabricConfig) -> Self {
        SimFabric {
            inner: Arc::new(FabricInner {
                hosts: RwLock::new(Vec::new()),
                config,
                faults: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Create a fabric with the default (paper-testbed) configuration.
    pub fn with_defaults() -> Self {
        Self::new(FabricConfig::default())
    }

    /// Convenience: build the paper's two-server back-to-back testbed. Returns the
    /// fabric and the two host ids.
    pub fn back_to_back(cfg: TestbedConfig) -> (Self, HostId, HostId) {
        let fabric = Self::with_defaults();
        let a = fabric.add_host(cfg.clone());
        let b = fabric.add_host(cfg);
        (fabric, a, b)
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.inner.config
    }

    /// Attach a new host with the given machine description. Returns its id.
    pub fn add_host(&self, cfg: TestbedConfig) -> HostId {
        let mut hosts = self.inner.hosts.write();
        let id = HostId(hosts.len());
        let host = HostState::new(
            id,
            cfg,
            self.inner.config.link.clone(),
            self.inner.config.va_base,
        );
        hosts.push(Arc::new(host));
        id
    }

    /// Number of hosts attached.
    pub fn num_hosts(&self) -> usize {
        self.inner.hosts.read().len()
    }

    pub(crate) fn host_state(&self, id: HostId) -> FabricResult<Arc<HostState>> {
        self.inner
            .hosts
            .read()
            .get(id.index())
            .cloned()
            .ok_or(FabricError::NoSuchHost(id.index()))
    }

    /// A handle for performing host-local operations (registration, hierarchy access,
    /// NIC toggles).
    pub fn host(&self, id: HostId) -> FabricResult<HostHandle> {
        Ok(HostHandle {
            state: self.host_state(id)?,
        })
    }

    /// Create an endpoint (queue pair) from `from` to `to`.
    ///
    /// If a [`FaultPlan`] was installed on the `(from, to)` link *before* this
    /// call, the endpoint captures it and every put it issues is subject to the
    /// plan's drop/duplicate/reorder schedule.
    pub fn endpoint(&self, from: HostId, to: HostId) -> FabricResult<Endpoint> {
        if from == to {
            return Err(FabricError::InvalidArgument(
                "loopback endpoints are not modelled",
            ));
        }
        let src = self.host_state(from)?;
        let dst = self.host_state(to)?;
        let faults = self
            .inner
            .faults
            .lock()
            .get(&(from.index(), to.index()))
            .map(|hook| hook.attach());
        Ok(Endpoint::new(
            self.inner.config.link.clone(),
            src,
            dst,
            faults,
        ))
    }

    /// Install a seeded fault plan on the directed link `from -> to`. Only
    /// endpoints created *after* this call are affected; install the plan before
    /// building the sender side. Installing a second plan on the same link
    /// replaces the first (and resets its counters). The reverse direction is a
    /// separate link — credit and NACK traffic riding `to -> from` stays
    /// reliable unless a plan is installed there too.
    pub fn install_fault_plan(
        &self,
        from: HostId,
        to: HostId,
        plan: FaultPlan,
    ) -> FabricResult<()> {
        if from == to {
            return Err(FabricError::InvalidArgument(
                "loopback endpoints are not modelled",
            ));
        }
        if !plan.is_valid() {
            return Err(FabricError::InvalidArgument(
                "fault probabilities must lie in [0, 1] and sum to at most 1",
            ));
        }
        self.host_state(from)?;
        self.host_state(to)?;
        self.inner
            .faults
            .lock()
            .insert((from.index(), to.index()), Arc::new(FaultHook::new(plan)));
        Ok(())
    }

    /// Aggregate fault counters for the directed link `from -> to`, or `None`
    /// when no plan was ever installed there.
    pub fn fault_counters(&self, from: HostId, to: HostId) -> Option<FaultSnapshot> {
        self.inner
            .faults
            .lock()
            .get(&(from.index(), to.index()))
            .map(|hook| hook.snapshot())
    }
}

/// Handle to one host of the fabric: local registration and hardware toggles.
#[derive(Clone)]
pub struct HostHandle {
    state: Arc<HostState>,
}

impl std::fmt::Debug for HostHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostHandle")
            .field("id", &self.state.id)
            .finish()
    }
}

impl HostHandle {
    /// This host's id.
    pub fn id(&self) -> HostId {
        self.state.id
    }

    /// Register a memory region of `len` bytes for remote access.
    pub fn register(&self, len: usize, flags: AccessFlags) -> FabricResult<Arc<MemoryRegion>> {
        self.state.register(len, flags)
    }

    /// Deregister a previously registered region.
    pub fn deregister(&self, region: &Arc<MemoryRegion>) {
        self.state.deregister(region)
    }

    /// Look up the region containing a descriptor's range (e.g. to read a mailbox the
    /// host owns locally).
    pub fn find_region(&self, desc: &RegionDescriptor) -> FabricResult<Arc<MemoryRegion>> {
        self.state.find_region(desc.base_addr, desc.len)
    }

    /// The host's shared cache-hierarchy levels (shared with the NIC DMA
    /// engine). Internally synchronized — no hierarchy-wide lock exists.
    pub fn hierarchy(&self) -> Arc<SharedHierarchy> {
        Arc::clone(&self.state.hierarchy)
    }

    /// Build the private-level memory bus for `core`: that core's own L1/L2
    /// and prefetcher (lock-free) over this host's shared striped levels. One
    /// live bus per core — see [`SharedHierarchy::core_bus`].
    pub fn core_bus(&self, core: usize) -> CoreBus {
        self.state.hierarchy.core_bus(core)
    }

    /// Toggle LLC stashing for traffic arriving at this host.
    pub fn set_stashing(&self, enabled: bool) {
        self.state.nic.set_stashing(enabled);
    }

    /// Whether inbound stashing is enabled at this host.
    pub fn stashing(&self) -> bool {
        self.state.nic.stashing()
    }

    /// Toggle the hardware prefetcher on this host.
    pub fn set_prefetching(&self, enabled: bool) {
        self.state.hierarchy.set_prefetching(enabled);
    }

    /// Attach or remove a memory stressor on this host (tail-latency experiments).
    pub fn set_stressor(&self, stressor: Option<twochains_memsim::MemoryStressor>) {
        self.state.hierarchy.set_stressor(stressor);
    }

    /// Reset NIC serialization points and clear hierarchy statistics (between
    /// benchmark phases).
    pub fn reset_for_benchmark(&self) {
        self.state.nic.reset();
        self.state.hierarchy.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_builds_two_hosts() {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::tiny_for_tests());
        assert_eq!(fabric.num_hosts(), 2);
        assert_ne!(a, b);
        assert!(fabric.host(a).is_ok());
        assert!(fabric.host(b).is_ok());
        assert!(fabric.host(HostId(7)).is_err());
    }

    #[test]
    fn registration_allocates_disjoint_addresses() {
        let (fabric, a, _) = SimFabric::back_to_back(TestbedConfig::tiny_for_tests());
        let host = fabric.host(a).unwrap();
        let r1 = host.register(4096, AccessFlags::rw()).unwrap();
        let r2 = host.register(4096, AccessFlags::rw()).unwrap();
        let (s1, e1) = (r1.base_addr(), r1.base_addr() + r1.len() as u64);
        let (s2, e2) = (r2.base_addr(), r2.base_addr() + r2.len() as u64);
        assert!(e1 <= s2 || e2 <= s1, "regions must not overlap");
        assert_ne!(r1.rkey(), r2.rkey());
    }

    #[test]
    fn find_region_by_descriptor() {
        let (fabric, a, _) = SimFabric::back_to_back(TestbedConfig::tiny_for_tests());
        let host = fabric.host(a).unwrap();
        let r = host.register(1024, AccessFlags::rwx()).unwrap();
        let found = host.find_region(&r.descriptor()).unwrap();
        assert!(Arc::ptr_eq(&found, &r));
        host.deregister(&r);
        assert!(host.find_region(&r.descriptor()).is_err());
    }

    #[test]
    fn loopback_endpoints_rejected() {
        let (fabric, a, _) = SimFabric::back_to_back(TestbedConfig::tiny_for_tests());
        assert!(fabric.endpoint(a, a).is_err());
    }

    #[test]
    fn stash_toggle_per_host() {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::tiny_for_tests());
        let ha = fabric.host(a).unwrap();
        let hb = fabric.host(b).unwrap();
        ha.set_stashing(false);
        assert!(!ha.stashing());
        assert!(hb.stashing(), "other host unaffected");
    }

    #[test]
    fn multi_host_fabric() {
        let fabric = SimFabric::with_defaults();
        let ids: Vec<_> = (0..4)
            .map(|_| fabric.add_host(TestbedConfig::tiny_for_tests()))
            .collect();
        assert_eq!(fabric.num_hosts(), 4);
        // all-to-all endpoints work
        for &x in &ids {
            for &y in &ids {
                if x != y {
                    assert!(fabric.endpoint(x, y).is_ok());
                }
            }
        }
    }
}
