//! Wire / protocol timing model for the simulated interconnect.
//!
//! The model is LogGP-flavoured: a one-sided put costs a fixed sender-side software
//! overhead, a doorbell + PCIe descriptor fetch, the wire time of the payload at the
//! effective line rate, and the receiver-side PCIe/DMA delivery. On top of that sit
//! *protocol thresholds*: like UCX, the simulated transport switches code paths as the
//! message size crosses configured boundaries, and a message that has *just* crossed a
//! boundary pays a small penalty. The paper calls this out explicitly when explaining
//! the latency irregularities of the Injected Function curve at the 8- and 256-integer
//! payloads (§VII-A): "When a message is just over the threshold size to move into a
//! new code path, there will be a slight performance degradation".
//!
//! Default constants are calibrated so that the small-message one-way latency and the
//! large-message latency land in the same regime the paper reports for its
//! back-to-back ConnectX-6 testbed (≈1 µs at 256 B rising to a few µs at 32 KiB).

use twochains_memsim::SimTime;

/// The protocol (code path) the transport selects for a given message size. Mirrors
/// the UCX short / bcopy (eager copy-based) / zcopy (registered eager) / rendezvous
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Tiny messages inlined into the work request.
    Short,
    /// Eager, copy-based send through a bounce buffer.
    Bcopy,
    /// Eager zero-copy from registered memory.
    Zcopy,
    /// Rendezvous (RTS/CTS) for very large transfers.
    Rendezvous,
}

/// One threshold in the protocol ladder: crossing `size` switches code paths; messages
/// in `[size, size + window)` pay `penalty` extra latency (the paper's "just over the
/// threshold" effect).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolThreshold {
    /// Boundary size in bytes.
    pub size: usize,
    /// Width of the penalized window just above the boundary.
    pub window: usize,
    /// Extra latency charged inside the window.
    pub penalty: SimTime,
}

/// Decomposed timing of a single one-sided put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTiming {
    /// Time the sending CPU is busy posting the operation (software overhead +
    /// doorbell). The sender can do other work after this.
    pub sender_cpu: SimTime,
    /// Time from the doorbell ringing until the last byte has been delivered into the
    /// destination memory system (PCIe + wire + DMA), excluding the DMA engine's
    /// cache-installation cost which the memory hierarchy charges separately.
    pub network: SimTime,
    /// Minimum spacing between successive messages of this size on the wire
    /// (the LogGP "gap"); determines streaming bandwidth / message rate.
    pub gap: SimTime,
}

impl LinkTiming {
    /// Total one-way latency contribution of the link (sender CPU + network).
    pub fn one_way(&self) -> SimTime {
        self.sender_cpu + self.network
    }
}

/// Link and protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Sender software overhead to build/post a work request (ns-scale).
    pub post_overhead: SimTime,
    /// MMIO doorbell write reaching the HCA.
    pub doorbell: SimTime,
    /// HCA descriptor + payload fetch over PCIe on the sending side.
    pub pcie_read: SimTime,
    /// Cable propagation + switchless port-to-port forwarding.
    pub wire_latency: SimTime,
    /// Receiver-side PCIe write / delivery overhead.
    pub delivery: SimTime,
    /// Line rate in gigabits per second (200 for ConnectX-6).
    pub line_rate_gbps: f64,
    /// Fraction of the line rate achievable end to end for a single stream
    /// (protocol/framing efficiency and the small servers' PCIe Gen4 x? slot).
    pub efficiency: f64,
    /// Protocol ladder boundaries.
    pub thresholds: Vec<ProtocolThreshold>,
    /// Size above which the rendezvous protocol kicks in.
    pub rendezvous_threshold: usize,
    /// Whether successive puts on one endpoint are delivered in order without
    /// explicit fences (true on the paper's testbed).
    pub ordered_delivery: bool,
}

impl LinkModel {
    /// Parameters modelling the paper's back-to-back ConnectX-6 / PCIe Gen4 testbed.
    pub fn connectx6_back_to_back() -> Self {
        LinkModel {
            post_overhead: SimTime::from_ns(90),
            doorbell: SimTime::from_ns(150),
            pcie_read: SimTime::from_ns(200),
            wire_latency: SimTime::from_ns(300),
            delivery: SimTime::from_ns(250),
            line_rate_gbps: 200.0,
            efficiency: 0.55,
            thresholds: vec![
                // UCX-like eager-short -> bcopy switch; the Injected Function frame
                // for a handful of integers (≈1.5 KiB) lands just above it.
                ProtocolThreshold {
                    size: 1498,
                    window: 32,
                    penalty: SimTime::from_ns(90),
                },
                // bcopy fragmentation boundary; the ≈2.5 KiB Injected frame for 256
                // integers lands just above it.
                ProtocolThreshold {
                    size: 2490,
                    window: 32,
                    penalty: SimTime::from_ns(110),
                },
            ],
            rendezvous_threshold: 64 * 1024,
            ordered_delivery: true,
        }
    }

    /// Effective single-stream bandwidth in bytes per nanosecond.
    pub fn effective_bytes_per_ns(&self) -> f64 {
        // Gb/s -> bytes/ns: 200 Gb/s = 25 B/ns.
        self.line_rate_gbps / 8.0 * self.efficiency
    }

    /// Pure serialization time of `size` bytes on the wire.
    pub fn wire_time(&self, size: usize) -> SimTime {
        SimTime::from_ns_f64(size as f64 / self.effective_bytes_per_ns())
    }

    /// Which protocol a message of `size` bytes selects.
    pub fn protocol(&self, size: usize) -> Protocol {
        if size >= self.rendezvous_threshold {
            return Protocol::Rendezvous;
        }
        let mut crossed = 0;
        for t in &self.thresholds {
            if size > t.size {
                crossed += 1;
            }
        }
        match crossed {
            0 => {
                if size <= 92 {
                    Protocol::Short
                } else {
                    Protocol::Bcopy
                }
            }
            1 => Protocol::Bcopy,
            _ => Protocol::Zcopy,
        }
    }

    /// The "just crossed a threshold" penalty for a message of `size` bytes.
    pub fn threshold_penalty(&self, size: usize) -> SimTime {
        for t in &self.thresholds {
            if size >= t.size && size < t.size + t.window {
                return t.penalty;
            }
        }
        SimTime::ZERO
    }

    /// Timing of one one-sided put of `size` bytes.
    pub fn put_timing(&self, size: usize) -> LinkTiming {
        let sender_cpu = self.post_overhead + self.doorbell;
        let serialization = self.wire_time(size);
        let mut network = self.pcie_read + self.wire_latency + self.delivery + serialization;
        network += self.threshold_penalty(size);
        if size >= self.rendezvous_threshold {
            // Rendezvous adds a control round trip before the bulk transfer.
            network += (self.wire_latency + self.delivery) * 2;
        }
        // The wire gap bounds streaming rate; per-message posting + doorbell cost
        // bounds it when messages are tiny.
        let gap = serialization.max(self.post_overhead + self.doorbell);
        LinkTiming {
            sender_cpu,
            network,
            gap,
        }
    }

    /// Timing of a one-sided get (read) of `size` bytes: a request flies to the
    /// target, the payload flies back.
    pub fn get_timing(&self, size: usize) -> LinkTiming {
        let put = self.put_timing(size);
        LinkTiming {
            sender_cpu: put.sender_cpu,
            network: put.network + self.wire_latency + self.pcie_read,
            gap: put.gap,
        }
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::connectx6_back_to_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_about_a_microsecond() {
        let m = LinkModel::connectx6_back_to_back();
        let t = m.put_timing(64).one_way();
        assert!(
            t >= SimTime::from_ns(800) && t <= SimTime::from_ns(1300),
            "got {t}"
        );
    }

    #[test]
    fn latency_grows_with_size() {
        let m = LinkModel::connectx6_back_to_back();
        let small = m.put_timing(256).one_way();
        let large = m.put_timing(32 * 1024).one_way();
        assert!(
            large > small * 2,
            "32KiB ({large}) should be much slower than 256B ({small})"
        );
        assert!(
            large < SimTime::from_us(6),
            "but still in the microsecond regime: {large}"
        );
    }

    #[test]
    fn wire_time_matches_line_rate() {
        let m = LinkModel::connectx6_back_to_back();
        // 200Gb/s * 0.55 = 13.75 B/ns -> 13750 bytes take ~1000ns
        let t = m.wire_time(13_750);
        assert!((t.as_ns() - 1000.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn protocol_ladder() {
        let m = LinkModel::connectx6_back_to_back();
        assert_eq!(m.protocol(32), Protocol::Short);
        assert_eq!(m.protocol(1024), Protocol::Bcopy);
        assert_eq!(m.protocol(2000), Protocol::Bcopy);
        assert_eq!(m.protocol(4096), Protocol::Zcopy);
        assert_eq!(m.protocol(128 * 1024), Protocol::Rendezvous);
    }

    #[test]
    fn threshold_penalty_applies_just_past_the_boundary() {
        let m = LinkModel::connectx6_back_to_back();
        assert_eq!(m.threshold_penalty(1400), SimTime::ZERO);
        assert!(
            m.threshold_penalty(1500) > SimTime::ZERO,
            "1500B just crossed 1498"
        );
        assert_eq!(
            m.threshold_penalty(1600),
            SimTime::ZERO,
            "well past the window"
        );
        assert!(
            m.threshold_penalty(2492) > SimTime::ZERO,
            "2492B just crossed 2490"
        );
        assert_eq!(m.threshold_penalty(3000), SimTime::ZERO);
    }

    #[test]
    fn injected_frame_sizes_hit_the_paper_artifacts() {
        // The Injected Function Indirect Put frame is 1468 + 4*n bytes before rounding
        // (1472 bytes for one integer). The paper observes artifacts at n=8 and n=256.
        let m = LinkModel::connectx6_back_to_back();
        let frame = |n: usize| 1468 + 4 * n;
        assert!(m.threshold_penalty(frame(8)) > SimTime::ZERO);
        assert!(m.threshold_penalty(frame(256)) > SimTime::ZERO);
        assert_eq!(m.threshold_penalty(frame(4)), SimTime::ZERO);
        assert_eq!(m.threshold_penalty(frame(64)), SimTime::ZERO);
        assert_eq!(m.threshold_penalty(frame(1024)), SimTime::ZERO);
    }

    #[test]
    fn local_frame_sizes_avoid_the_artifacts() {
        // Local Function frames are 60 + 4*n bytes (64 B for one integer); none of the
        // swept payload sizes should land in a penalty window.
        let m = LinkModel::connectx6_back_to_back();
        for n in [
            1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
        ] {
            assert_eq!(m.threshold_penalty(60 + 4 * n), SimTime::ZERO, "n={n}");
        }
    }

    #[test]
    fn gap_is_wire_bound_for_large_and_cpu_bound_for_small() {
        let m = LinkModel::connectx6_back_to_back();
        let small = m.put_timing(64);
        let large = m.put_timing(64 * 1024);
        assert_eq!(small.gap, m.post_overhead + m.doorbell);
        assert!(large.gap > small.gap);
    }

    #[test]
    fn rendezvous_adds_a_control_round_trip() {
        let mut m = LinkModel::connectx6_back_to_back();
        m.rendezvous_threshold = 8192;
        let below = m.put_timing(8191);
        let above = m.put_timing(8192);
        assert!(above.network > below.network + SimTime::from_ns(500));
    }

    #[test]
    fn get_is_slower_than_put() {
        let m = LinkModel::connectx6_back_to_back();
        assert!(m.get_timing(4096).network > m.put_timing(4096).network);
    }
}
