//! Completion queues and software completion tracking.
//!
//! One-sided operations complete asynchronously; a real transport posts a completion
//! entry that the initiating software must harvest. Two-Chains deliberately avoids
//! this machinery on its fast path — the reactive mailbox *is* the completion signal —
//! while the UCX-put baseline has to pay for it, which is exactly the software
//! overhead difference the paper measures in Figs. 5–6 ("the standard UCX put
//! operation has more library overhead for flow control and detecting message
//! completion").

use std::collections::VecDeque;

use twochains_memsim::SimTime;

/// A single completion entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Identifier returned when the operation was posted.
    pub id: u64,
    /// Virtual time at which the operation completed on the wire.
    pub ready_at: SimTime,
}

/// A software completion queue with bounded capacity, modelling the transmit queue
/// depth of the HCA plus the library's tracking structures.
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    entries: VecDeque<Completion>,
    next_id: u64,
    capacity: usize,
    /// Cost of harvesting one completion (library bookkeeping per entry).
    harvest_cost: SimTime,
    harvested: u64,
}

impl CompletionQueue {
    /// Create a queue with the given depth. A typical UCX transmit queue depth is a
    /// few hundred entries; the harvest cost is the per-entry software bookkeeping.
    pub fn new(capacity: usize, harvest_cost: SimTime) -> Self {
        assert!(capacity > 0, "completion queue needs capacity");
        CompletionQueue {
            entries: VecDeque::with_capacity(capacity),
            next_id: 0,
            capacity,
            harvest_cost,
            harvested: 0,
        }
    }

    /// Default parameters for the UCX-like baseline.
    pub fn ucx_default() -> Self {
        Self::new(256, SimTime::from_ns(55))
    }

    /// Post an operation that will complete at `ready_at`. Returns its id, or `None`
    /// if the queue is full (the caller must progress/poll before posting more — this
    /// is the back-pressure that throttles the baseline's streaming rate).
    pub fn post(&mut self, ready_at: SimTime) -> Option<u64> {
        if self.entries.len() >= self.capacity {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back(Completion { id, ready_at });
        Some(id)
    }

    /// Harvest every completion that is ready at `now`. Returns the harvested entries
    /// and the software time spent doing so.
    pub fn poll(&mut self, now: SimTime) -> (Vec<Completion>, SimTime) {
        let mut out = Vec::new();
        while let Some(front) = self.entries.front() {
            if front.ready_at <= now {
                out.push(*front);
                self.entries.pop_front();
            } else {
                break;
            }
        }
        self.harvested += out.len() as u64;
        let cost = self.harvest_cost * out.len() as u64;
        (out, cost)
    }

    /// Block (in virtual time) until the oldest outstanding completion is ready.
    /// Returns the time at which it becomes ready, or `now` if nothing is outstanding.
    pub fn earliest_ready(&self, now: SimTime) -> SimTime {
        self.entries
            .front()
            .map(|c| c.ready_at.max(now))
            .unwrap_or(now)
    }

    /// Number of outstanding (unharvested) operations.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Total completions harvested over the queue's lifetime.
    pub fn harvested(&self) -> u64 {
        self.harvested
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-entry harvest cost.
    pub fn harvest_cost(&self) -> SimTime {
        self.harvest_cost
    }
}

/// Per-shard completion routing for a sharded receiver.
///
/// When the receive path is split into shards that each own the mailbox banks with
/// `bank % num_shards == shard`, the software tracking the sender's in-flight
/// frames wants the same partitioning: completions for frames aimed at a shard's
/// banks should be harvested by (or on behalf of) that shard, without scanning a
/// single global queue. `ShardedCompletions` is a bundle of [`CompletionQueue`]s,
/// one per shard, with the bank→shard route applied on post.
#[derive(Debug, Clone)]
pub struct ShardedCompletions {
    queues: Vec<CompletionQueue>,
}

impl ShardedCompletions {
    /// One queue per shard, each with `capacity` entries and `harvest_cost` per
    /// harvested completion.
    pub fn new(shards: usize, capacity: usize, harvest_cost: SimTime) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedCompletions {
            queues: (0..shards)
                .map(|_| CompletionQueue::new(capacity, harvest_cost))
                .collect(),
        }
    }

    /// Number of shards (queues).
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The shard whose queue tracks operations aimed at `bank` — the same
    /// deterministic `bank % num_shards` map the receiver uses for bank ownership
    /// (mirrors the core crate's `ShardMask::owner_of`, which cannot be imported
    /// here because fabric sits below it; change both together or sender
    /// completion routing diverges from receiver ownership).
    pub fn route(&self, bank: usize) -> usize {
        bank % self.queues.len()
    }

    /// Post an operation aimed at `bank`, completing at `ready_at`, onto the owning
    /// shard's queue. Returns `(shard, id)`, or `None` if that queue is full (the
    /// caller must let the shard drain before pushing more at it — per-shard
    /// back-pressure).
    pub fn post_to_bank(&mut self, bank: usize, ready_at: SimTime) -> Option<(usize, u64)> {
        let shard = self.route(bank);
        self.queues[shard].post(ready_at).map(|id| (shard, id))
    }

    /// Harvest every completion of `shard`'s queue that is ready at `now`.
    pub fn poll_shard(&mut self, shard: usize, now: SimTime) -> (Vec<Completion>, SimTime) {
        self.queues[shard].poll(now)
    }

    /// When the oldest outstanding completion of `shard` becomes ready (or `now`).
    pub fn earliest_ready(&self, shard: usize, now: SimTime) -> SimTime {
        self.queues[shard].earliest_ready(now)
    }

    /// Outstanding operations on `shard`'s queue.
    pub fn outstanding(&self, shard: usize) -> usize {
        self.queues[shard].outstanding()
    }

    /// Outstanding operations across all shards.
    pub fn outstanding_total(&self) -> usize {
        self.queues.iter().map(|q| q.outstanding()).sum()
    }

    /// Mutable access to one shard's queue (e.g. to pass to
    /// [`Endpoint::put_tracked`](crate::endpoint::Endpoint::put_tracked)).
    pub fn queue_mut(&mut self, shard: usize) -> &mut CompletionQueue {
        &mut self.queues[shard]
    }

    /// The per-shard queues as one mutable slice. A multi-threaded sender fleet
    /// splits this (`iter_mut`/`split_at_mut`) so each sender thread owns the
    /// disjoint `&mut CompletionQueue` of its own stream — per-stream flow
    /// control with no lock between streams.
    pub fn queues_mut(&mut self) -> &mut [CompletionQueue] {
        &mut self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_poll_in_order() {
        let mut cq = CompletionQueue::new(4, SimTime::from_ns(10));
        let a = cq.post(SimTime::from_ns(100)).unwrap();
        let b = cq.post(SimTime::from_ns(200)).unwrap();
        assert_eq!(cq.outstanding(), 2);
        let (done, cost) = cq.poll(SimTime::from_ns(150));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, a);
        assert_eq!(cost, SimTime::from_ns(10));
        let (done, _) = cq.poll(SimTime::from_ns(250));
        assert_eq!(done[0].id, b);
        assert_eq!(cq.outstanding(), 0);
        assert_eq!(cq.harvested(), 2);
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let mut cq = CompletionQueue::new(2, SimTime::ZERO);
        assert!(cq.post(SimTime::from_ns(1)).is_some());
        assert!(cq.post(SimTime::from_ns(2)).is_some());
        assert!(
            cq.post(SimTime::from_ns(3)).is_none(),
            "third post must be refused"
        );
        cq.poll(SimTime::from_ns(10));
        assert!(cq.post(SimTime::from_ns(4)).is_some());
    }

    #[test]
    fn earliest_ready_reports_wait_target() {
        let mut cq = CompletionQueue::new(4, SimTime::ZERO);
        assert_eq!(cq.earliest_ready(SimTime::from_ns(5)), SimTime::from_ns(5));
        cq.post(SimTime::from_ns(100)).unwrap();
        assert_eq!(
            cq.earliest_ready(SimTime::from_ns(5)),
            SimTime::from_ns(100)
        );
        assert_eq!(
            cq.earliest_ready(SimTime::from_ns(150)),
            SimTime::from_ns(150)
        );
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut cq = CompletionQueue::new(8, SimTime::ZERO);
        let ids: Vec<_> = (0..5)
            .map(|i| cq.post(SimTime::from_ns(i)).unwrap())
            .collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        CompletionQueue::new(0, SimTime::ZERO);
    }

    #[test]
    fn sharded_completions_route_by_bank_modulo() {
        let mut sc = ShardedCompletions::new(3, 4, SimTime::from_ns(10));
        assert_eq!(sc.shards(), 3);
        assert_eq!(sc.route(0), 0);
        assert_eq!(sc.route(4), 1);
        assert_eq!(sc.route(5), 2);
        let (s0, _) = sc.post_to_bank(0, SimTime::from_ns(100)).unwrap();
        let (s1, _) = sc.post_to_bank(4, SimTime::from_ns(50)).unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(sc.outstanding(0), 1);
        assert_eq!(sc.outstanding(2), 0);
        assert_eq!(sc.outstanding_total(), 2);
        // Each shard harvests only its own completions.
        let (done, cost) = sc.poll_shard(1, SimTime::from_ns(60));
        assert_eq!(done.len(), 1);
        assert_eq!(cost, SimTime::from_ns(10));
        assert_eq!(sc.outstanding(0), 1, "shard 0's entry is untouched");
        assert_eq!(
            sc.earliest_ready(0, SimTime::ZERO),
            SimTime::from_ns(100),
            "shard 0 still waits on its own oldest completion"
        );
    }

    #[test]
    fn sharded_completions_apply_per_shard_backpressure() {
        let mut sc = ShardedCompletions::new(2, 1, SimTime::ZERO);
        assert!(sc.post_to_bank(0, SimTime::from_ns(1)).is_some());
        assert!(
            sc.post_to_bank(2, SimTime::from_ns(2)).is_none(),
            "bank 2 routes to the full shard-0 queue"
        );
        assert!(
            sc.post_to_bank(1, SimTime::from_ns(3)).is_some(),
            "shard 1's queue is independent"
        );
        sc.poll_shard(0, SimTime::from_ns(10));
        assert!(sc.post_to_bank(0, SimTime::from_ns(4)).is_some());
    }

    #[test]
    #[should_panic(expected = "shard")]
    fn zero_shards_rejected() {
        ShardedCompletions::new(0, 4, SimTime::ZERO);
    }

    #[test]
    fn queues_split_into_disjoint_per_thread_handles() {
        // The multi-threaded sender fleet hands each sender thread the &mut
        // CompletionQueue of its own stream; posts through the split handles
        // must land exactly where post_to_bank would have routed them.
        let mut sc = ShardedCompletions::new(4, 8, SimTime::from_ns(5));
        std::thread::scope(|s| {
            for (shard, q) in sc.queues_mut().iter_mut().enumerate() {
                s.spawn(move || {
                    for i in 0..3u64 {
                        q.post(SimTime::from_ns(shard as u64 * 100 + i)).unwrap();
                    }
                });
            }
        });
        for shard in 0..4 {
            assert_eq!(sc.outstanding(shard), 3, "shard {shard}");
        }
        assert_eq!(sc.queue_mut(1).poll(SimTime::from_us_f64(1.0)).0.len(), 3);
        assert_eq!(sc.outstanding_total(), 9);
    }
}
