//! NIC (HCA) model: doorbells, DMA delivery, and the stash port.
//!
//! On the paper's platform the PCIe root complex controlling the ConnectX-6 HCA is
//! connected into the on-chip interconnect, and traffic arriving from the network is
//! stashed into the LLC (and eventually written back to main memory). The NIC model
//! here owns that decision: when a message is delivered, the DMA engine either
//! installs the arriving cache lines into the destination LLC through the stash port
//! of the memory hierarchy, or writes them to DRAM (invalidating stale cached
//! copies), depending on whether stashing is enabled for the device.
//!
//! The NIC also serializes transmissions: two puts posted back to back cannot occupy
//! the wire at the same time, which is what bounds streaming message rate.

use parking_lot::Mutex;
use std::sync::Arc;

use twochains_memsim::{SharedHierarchy, SimTime};

use crate::link::{LinkModel, LinkTiming};

/// Per-host NIC state: transmit/receive serialization points and the stashing toggle
/// for inbound DMA.
#[derive(Debug)]
pub struct NicModel {
    link: LinkModel,
    /// Time until which the transmit path is busy.
    tx_busy_until: Mutex<SimTime>,
    /// Time until which the receive/DMA path is busy.
    rx_busy_until: Mutex<SimTime>,
    /// Whether inbound DMA is stashed into the LLC (the firmware toggle for the
    /// ConnectX-6 device in the paper's experiments).
    stash_inbound: Mutex<bool>,
    /// The destination memory hierarchy this NIC delivers into (internally
    /// synchronized: the DMA engine stripes into the shared LLC without a
    /// hierarchy-wide lock).
    hierarchy: Arc<SharedHierarchy>,
}

/// Timing of a delivery performed by [`NicModel::deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryTiming {
    /// When the last byte is visible in the destination memory system.
    pub delivered_at: SimTime,
    /// When the sender-side CPU is free again.
    pub sender_free_at: SimTime,
    /// Cost the DMA engine spent installing lines (stash or DRAM path).
    pub dma_cost: SimTime,
}

impl NicModel {
    /// Create a NIC attached to `hierarchy`, honouring the hierarchy's configured
    /// stashing capability as the initial inbound-stash setting.
    pub fn new(link: LinkModel, hierarchy: Arc<SharedHierarchy>) -> Self {
        let stash = hierarchy.stashing_enabled();
        NicModel {
            link,
            tx_busy_until: Mutex::new(SimTime::ZERO),
            rx_busy_until: Mutex::new(SimTime::ZERO),
            stash_inbound: Mutex::new(stash),
            hierarchy,
        }
    }

    /// The link model used by this NIC.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Enable or disable LLC stashing for inbound traffic (the per-device low-level
    /// control the paper uses to toggle the feature for the ConnectX-6).
    pub fn set_stashing(&self, enabled: bool) {
        *self.stash_inbound.lock() = enabled;
        self.hierarchy.set_stashing(enabled);
    }

    /// Whether inbound stashing is currently enabled.
    pub fn stashing(&self) -> bool {
        *self.stash_inbound.lock()
    }

    /// The destination memory hierarchy (shared with the host's compute side).
    pub fn hierarchy(&self) -> &Arc<SharedHierarchy> {
        &self.hierarchy
    }

    /// Reset the serialization points (between benchmark phases).
    pub fn reset(&self) {
        *self.tx_busy_until.lock() = SimTime::ZERO;
        *self.rx_busy_until.lock() = SimTime::ZERO;
    }

    /// Account for the transmit side of a put posted at `now` on the *sending* NIC:
    /// returns (time the wire transfer starts, time the tx path frees up).
    pub fn acquire_tx(&self, now: SimTime, timing: &LinkTiming) -> (SimTime, SimTime) {
        let mut busy = self.tx_busy_until.lock();
        let start = now.max(*busy);
        let free = start + timing.gap;
        *busy = free;
        (start, free)
    }

    /// Deliver `len` bytes at simulated destination address `dst_addr`, arriving at
    /// the receive path at `arrival`. Returns when the data is visible and how much
    /// DMA work it took. This is called on the *receiving* NIC.
    ///
    /// The install engine (stash port or DRAM write path) is cut-through: it keeps up
    /// with the line rate, so only the tail of the final cache line is exposed on the
    /// latency path, and back-to-back messages are spaced by the smaller of the
    /// install cost and the wire-serialization time.
    pub fn deliver(&self, arrival: SimTime, dst_addr: u64, len: usize) -> (SimTime, SimTime) {
        let mut busy = self.rx_busy_until.lock();
        let start = arrival.max(*busy);
        let dma_cost = self.hierarchy.dma_write(dst_addr, len);
        // Exposed tail: the last line's installation.
        let tail = dma_cost.min(SimTime::from_ns(12));
        let done = start + tail;
        // Throughput: the install engine is at least as fast as the wire.
        let wire_equiv = self.link.wire_time(len);
        *busy = start + dma_cost.min(wire_equiv).max(tail);
        (done, dma_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_memsim::TestbedConfig;

    fn nic(stash: bool) -> NicModel {
        let mut cfg = TestbedConfig::tiny_for_tests();
        cfg.llc_stashing = stash;
        let h = Arc::new(SharedHierarchy::new(cfg));
        NicModel::new(LinkModel::connectx6_back_to_back(), h)
    }

    #[test]
    fn nic_inherits_stash_setting_from_hierarchy() {
        assert!(nic(true).stashing());
        assert!(!nic(false).stashing());
    }

    #[test]
    fn toggling_stash_propagates_to_hierarchy() {
        let n = nic(true);
        n.set_stashing(false);
        assert!(!n.stashing());
        assert!(!n.hierarchy().stashing_enabled());
        n.set_stashing(true);
        assert!(n.hierarchy().stashing_enabled());
    }

    #[test]
    fn tx_serialization_spaces_out_messages() {
        let n = nic(true);
        let timing = n.link().put_timing(16 * 1024);
        let now = SimTime::from_ns(100);
        let (s1, f1) = n.acquire_tx(now, &timing);
        let (s2, _f2) = n.acquire_tx(now, &timing);
        assert_eq!(s1, now);
        assert_eq!(s2, f1, "second message waits for the gap of the first");
        assert!(f1 > s1);
    }

    #[test]
    fn delivery_installs_lines_and_charges_dma() {
        let n = nic(true);
        let (done, cost) = n.deliver(SimTime::from_ns(500), 0x8000, 256);
        assert!(done >= SimTime::from_ns(500));
        assert!(cost > SimTime::ZERO);
        assert!(n.hierarchy().llc_contains(0x8000));
        assert_eq!(n.hierarchy().stats().stashed_lines, 4);
    }

    #[test]
    fn delivery_without_stash_goes_to_dram() {
        let n = nic(false);
        n.deliver(SimTime::ZERO, 0x8000, 256);
        assert!(!n.hierarchy().llc_contains(0x8000));
        assert_eq!(n.hierarchy().stats().dma_dram_lines, 4);
    }

    #[test]
    fn rx_serialization_orders_back_to_back_deliveries() {
        let n = nic(true);
        let (done1, _) = n.deliver(SimTime::from_ns(100), 0x0, 4096);
        let (done2, _) = n.deliver(SimTime::from_ns(100), 0x2000, 4096);
        assert!(done2 > done1, "second delivery queues behind the first");
    }

    #[test]
    fn reset_clears_serialization_points() {
        let n = nic(true);
        let timing = n.link().put_timing(64 * 1024);
        n.acquire_tx(SimTime::from_us(5), &timing);
        n.reset();
        let (s, _) = n.acquire_tx(SimTime::ZERO, &timing);
        assert_eq!(s, SimTime::ZERO);
    }
}
