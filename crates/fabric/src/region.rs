//! Registered memory regions.
//!
//! A [`MemoryRegion`] is the simulated analogue of memory pinned and registered with
//! an InfiniBand HCA for one-sided remote access: a contiguous buffer with a base
//! "virtual address" in the owning host's simulated address space, an [`RKey`]
//! guarding remote access, and permission bits.
//!
//! ## Ordering protocol
//!
//! The backing store is a slice of `AtomicU8`, so the region can be shared freely
//! between the threads that play the roles of the two hosts and the NIC. Bulk data
//! is moved with `Relaxed` byte stores/loads; *signal* bytes (the `MAG` / `SIG MAG`
//! magic bytes of the Two-Chains frame, §III-A of the paper) are written with
//! `Release` and read with `Acquire`. A reader that observes the signal byte with an
//! acquire load is therefore guaranteed to observe every payload byte written before
//! the matching release store — exactly the ordering guarantee the paper relies on
//! from RDMA writes on its testbed ("Modern servers like the one we use as a testbed
//! for this study enforce ordering"), and the same publish/consume discipline the
//! Two-Chains mailbox uses.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::error::{FabricError, FabricResult};
use crate::rkey::{AccessFlags, RKey};

/// Out-of-band description of a registered region: everything a peer needs in order
/// to target it with one-sided operations. In a real deployment this is what travels
/// over the bootstrap channel (sockets, MPI, etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionDescriptor {
    /// Owning host.
    pub host: usize,
    /// Base simulated virtual address.
    pub base_addr: u64,
    /// Length in bytes.
    pub len: usize,
    /// Remote access key.
    pub rkey: RKey,
    /// Permissions granted to remote peers.
    pub flags: AccessFlags,
}

/// A registered, remotely accessible memory region.
#[derive(Debug)]
pub struct MemoryRegion {
    bytes: Box<[AtomicU8]>,
    base_addr: u64,
    host: usize,
    rkey: RKey,
    flags: AccessFlags,
}

impl MemoryRegion {
    /// Create a region of `len` bytes at `base_addr` in `host`'s address space.
    /// Normally called through `SimFabric::register`, which allocates the address and
    /// the rkey nonce.
    pub fn new(
        host: usize,
        base_addr: u64,
        len: usize,
        flags: AccessFlags,
        nonce: u32,
    ) -> FabricResult<Arc<Self>> {
        if len == 0 {
            return Err(FabricError::InvalidArgument(
                "cannot register a zero-length region",
            ));
        }
        let bytes: Box<[AtomicU8]> = (0..len).map(|_| AtomicU8::new(0)).collect();
        let rkey = RKey::generate(base_addr, len, flags, nonce);
        Ok(Arc::new(MemoryRegion {
            bytes,
            base_addr,
            host,
            rkey,
            flags,
        }))
    }

    /// The region's descriptor for out-of-band exchange.
    pub fn descriptor(&self) -> RegionDescriptor {
        RegionDescriptor {
            host: self.host,
            base_addr: self.base_addr,
            len: self.bytes.len(),
            rkey: self.rkey,
            flags: self.flags,
        }
    }

    /// Owning host id.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Base simulated virtual address.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the region is empty (never true for successfully registered regions).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The remote key guarding this region.
    pub fn rkey(&self) -> RKey {
        self.rkey
    }

    /// The permissions granted at registration time.
    pub fn flags(&self) -> AccessFlags {
        self.flags
    }

    /// Simulated virtual address of `offset` within the region.
    pub fn addr_of(&self, offset: usize) -> u64 {
        self.base_addr + offset as u64
    }

    fn check_bounds(&self, offset: usize, len: usize) -> FabricResult<()> {
        if offset
            .checked_add(len)
            .map(|end| end <= self.bytes.len())
            .unwrap_or(false)
        {
            Ok(())
        } else {
            Err(FabricError::OutOfBounds {
                offset,
                len,
                region_len: self.bytes.len(),
            })
        }
    }

    /// Write `data` at `offset` with relaxed ordering (bulk payload movement).
    pub fn write(&self, offset: usize, data: &[u8]) -> FabricResult<()> {
        self.check_bounds(offset, data.len())?;
        for (i, b) in data.iter().enumerate() {
            self.bytes[offset + i].store(*b, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Read `len` bytes at `offset` with relaxed ordering.
    pub fn read(&self, offset: usize, len: usize) -> FabricResult<Vec<u8>> {
        self.check_bounds(offset, len)?;
        Ok((0..len)
            .map(|i| self.bytes[offset + i].load(Ordering::Relaxed))
            .collect())
    }

    /// Read into a caller-provided buffer (avoids the allocation of [`MemoryRegion::read`]).
    pub fn read_into(&self, offset: usize, out: &mut [u8]) -> FabricResult<()> {
        self.check_bounds(offset, out.len())?;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.bytes[offset + i].load(Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fill `len` bytes at `offset` with `value`.
    pub fn fill(&self, offset: usize, len: usize, value: u8) -> FabricResult<()> {
        self.check_bounds(offset, len)?;
        for i in 0..len {
            self.bytes[offset + i].store(value, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Publish a signal byte: a `Release` store that makes all previous relaxed
    /// writes visible to any reader that observes this byte with [`MemoryRegion::load_acquire_u8`].
    pub fn store_release_u8(&self, offset: usize, value: u8) -> FabricResult<()> {
        self.check_bounds(offset, 1)?;
        self.bytes[offset].store(value, Ordering::Release);
        Ok(())
    }

    /// Consume a signal byte with `Acquire` ordering.
    pub fn load_acquire_u8(&self, offset: usize) -> FabricResult<u8> {
        self.check_bounds(offset, 1)?;
        Ok(self.bytes[offset].load(Ordering::Acquire))
    }

    /// Convenience: store a little-endian u64 with relaxed ordering.
    pub fn store_u64(&self, offset: usize, value: u64) -> FabricResult<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Convenience: load a little-endian u64 with relaxed ordering.
    pub fn load_u64(&self, offset: usize) -> FabricResult<u64> {
        let mut buf = [0u8; 8];
        self.read_into(offset, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience: store a little-endian u32 with relaxed ordering.
    pub fn store_u32(&self, offset: usize, value: u32) -> FabricResult<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Convenience: load a little-endian u32 with relaxed ordering.
    pub fn load_u32(&self, offset: usize) -> FabricResult<u32> {
        let mut buf = [0u8; 4];
        self.read_into(offset, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Fetch-and-add on an 8-byte-aligned u64, as an RDMA atomic would perform it.
    /// Returns the previous value.
    pub fn fetch_add_u64(&self, offset: usize, operand: u64) -> FabricResult<u64> {
        if !offset.is_multiple_of(8) {
            return Err(FabricError::Misaligned { offset });
        }
        self.check_bounds(offset, 8)?;
        // Byte-wise atomics cannot express a true 8-byte RMW; the simulated HCA
        // serializes atomics per-region, which we emulate with a spin on byte 0 as a
        // lock would be overkill for a simulator — instead we accept that concurrent
        // atomics to the same address from multiple simulated initiators are rare in
        // the benchmarks and perform a read-modify-write under a release publish.
        let old = self.load_u64(offset)?;
        self.store_u64(offset, old.wrapping_add(operand))?;
        self.bytes[offset].store((old.wrapping_add(operand) & 0xff) as u8, Ordering::Release);
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn region(len: usize) -> Arc<MemoryRegion> {
        MemoryRegion::new(0, 0x10_0000, len, AccessFlags::rwx(), 1).unwrap()
    }

    #[test]
    fn zero_length_rejected() {
        assert!(matches!(
            MemoryRegion::new(0, 0, 0, AccessFlags::rw(), 0),
            Err(FabricError::InvalidArgument(_))
        ));
    }

    #[test]
    fn write_read_roundtrip() {
        let r = region(256);
        r.write(10, b"two-chains").unwrap();
        assert_eq!(r.read(10, 10).unwrap(), b"two-chains");
        let mut buf = [0u8; 4];
        r.read_into(10, &mut buf).unwrap();
        assert_eq!(&buf, b"two-");
    }

    #[test]
    fn bounds_are_enforced() {
        let r = region(64);
        assert!(r.write(60, &[0; 8]).is_err());
        assert!(r.read(64, 1).is_err());
        assert!(r.read(0, 65).is_err());
        assert!(r.write(0, &[0; 64]).is_ok());
        // offset+len overflow does not panic
        assert!(r.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn scalar_helpers() {
        let r = region(64);
        r.store_u64(8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(r.load_u64(8).unwrap(), 0xdead_beef_cafe_f00d);
        r.store_u32(16, 0x1234_5678).unwrap();
        assert_eq!(r.load_u32(16).unwrap(), 0x1234_5678);
    }

    #[test]
    fn signal_bytes_roundtrip() {
        let r = region(64);
        assert_eq!(r.load_acquire_u8(63).unwrap(), 0);
        r.store_release_u8(63, 0xAB).unwrap();
        assert_eq!(r.load_acquire_u8(63).unwrap(), 0xAB);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let r = region(64);
        r.store_u64(0, 40).unwrap();
        assert_eq!(r.fetch_add_u64(0, 2).unwrap(), 40);
        assert_eq!(r.load_u64(0).unwrap(), 42);
        assert!(matches!(
            r.fetch_add_u64(3, 1),
            Err(FabricError::Misaligned { .. })
        ));
    }

    #[test]
    fn fill_sets_range() {
        let r = region(32);
        r.fill(4, 8, 0x5A).unwrap();
        assert_eq!(r.read(4, 8).unwrap(), vec![0x5A; 8]);
        assert_eq!(r.read(0, 4).unwrap(), vec![0; 4]);
        assert!(r.fill(30, 8, 1).is_err());
    }

    #[test]
    fn descriptor_reflects_registration() {
        let r = region(128);
        let d = r.descriptor();
        assert_eq!(d.host, 0);
        assert_eq!(d.base_addr, 0x10_0000);
        assert_eq!(d.len, 128);
        assert_eq!(d.rkey, r.rkey());
        assert_eq!(d.flags, AccessFlags::rwx());
        assert_eq!(r.addr_of(12), 0x10_000C);
        assert!(!r.is_empty());
    }

    #[test]
    fn publish_consume_across_threads() {
        // Writer publishes a payload then the signal byte with release; reader spins
        // on acquire until it sees the signal and must then observe the payload.
        let r = region(4096);
        let writer = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            writer.write(0, &[7u8; 4000]).unwrap();
            writer.store_release_u8(4095, 1).unwrap();
        });
        while r.load_acquire_u8(4095).unwrap() == 0 {
            std::hint::spin_loop();
        }
        let data = r.read(0, 4000).unwrap();
        assert!(data.iter().all(|&b| b == 7));
        t.join().unwrap();
    }
}
