//! Seeded fault injection: per-link drop / duplicate / reorder schedules.
//!
//! A real RDMA deployment does not grant the lossless, ordered fabric the rest of
//! this crate models by default. This module lets a test (or a bench sweep) install
//! a [`FaultPlan`] on one *directed* link of the fabric — an `(initiator, target)`
//! host pair — and have every put issued on endpoints of that link roll a
//! deterministic, seeded die:
//!
//! * **drop** — the put consumes its transmit-pipeline virtual time (the sender
//!   cannot tell), but the bytes never land at the destination.
//! * **duplicate** — the put lands normally *and* a copy of it is redelivered
//!   later, immediately before the next put on the same endpoint lands. By then
//!   the receiver may have consumed the original, so the copy shows up as a stale
//!   replay of an already-retired frame.
//! * **reorder** — the put is held back and lands immediately *after* the next
//!   put on the same endpoint: two adjacent in-flight deliveries swap.
//!
//! Deferred redeliveries never roll the die again, and all deferral is
//! per-endpoint: the writes one endpoint issues (originals, duplicates, held
//! frames) stay totally ordered with respect to each other, so fault injection
//! perturbs *delivery order and multiplicity* — what a lossy fabric really
//! perturbs — without fabricating write/write races that no NIC would produce.
//!
//! The plan must be installed (see
//! [`SimFabric::install_fault_plan`](crate::fabric::SimFabric::install_fault_plan))
//! before the endpoints it should affect are created: each endpoint captures the
//! link's fault hook at creation time, so endpoints of a pristine link carry no
//! hook at all and pay nothing. With no plan installed every counter in
//! [`FaultSnapshot`] is zero by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::prelude::*;

use crate::region::MemoryRegion;

/// Per-directed-link fault probabilities and the seed driving them.
///
/// The three probabilities are evaluated as disjoint events per put (their sum
/// must not exceed 1): one uniform draw in `[0, 1)` selects drop, duplicate,
/// reorder, or clean delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a put is silently lost.
    pub drop: f64,
    /// Probability a put is delivered twice (the copy arrives late).
    pub duplicate: f64,
    /// Probability a put swaps delivery order with the next one on its endpoint.
    pub reorder: f64,
    /// Seed for the deterministic PRNG; every endpoint of the link derives its
    /// own stream from this seed and its creation index.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that only drops puts.
    pub fn drop_only(p: f64, seed: u64) -> Self {
        FaultPlan {
            drop: p,
            duplicate: 0.0,
            reorder: 0.0,
            seed,
        }
    }

    /// A plan splitting `p` evenly across drop, duplicate and reorder.
    pub fn mixed(p: f64, seed: u64) -> Self {
        FaultPlan {
            drop: p / 3.0,
            duplicate: p / 3.0,
            reorder: p / 3.0,
            seed,
        }
    }

    pub(crate) fn is_valid(&self) -> bool {
        let probs = [self.drop, self.duplicate, self.reorder];
        probs.iter().all(|p| (0.0..=1.0).contains(p)) && probs.iter().sum::<f64>() <= 1.0
    }
}

/// Counts of injected faults on one directed link, aggregated over all of its
/// endpoints. Obtained from
/// [`SimFabric::fault_counters`](crate::fabric::SimFabric::fault_counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Puts whose bytes never landed.
    pub dropped: u64,
    /// Puts that were queued for a second, late delivery.
    pub duplicated: u64,
    /// Puts held back to swap with their successor.
    pub reordered: u64,
    /// Deferred deliveries (duplicate copies and held originals) that landed.
    pub redelivered: u64,
}

/// The shared, per-link half of the fault machinery: the plan, the aggregate
/// counters, and the endpoint-creation counter that seeds per-endpoint streams.
#[derive(Debug)]
pub(crate) struct FaultHook {
    plan: FaultPlan,
    endpoints: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    redelivered: AtomicU64,
}

impl FaultHook {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultHook {
            plan,
            endpoints: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            redelivered: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            redelivered: self.redelivered.load(Ordering::Relaxed),
        }
    }

    /// Build the per-endpoint state for a newly created endpoint of this link.
    /// Each endpoint gets its own PRNG stream (derived from the plan seed and
    /// the endpoint's creation index) so multi-lane runs stay deterministic
    /// regardless of thread interleaving.
    pub(crate) fn attach(self: &Arc<Self>) -> EndpointFaults {
        let index = self.endpoints.fetch_add(1, Ordering::Relaxed);
        let seed = self
            .plan
            .seed
            .wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        EndpointFaults {
            hook: Arc::clone(self),
            rng: StdRng::seed_from_u64(seed),
            dups: Vec::new(),
            held: Vec::new(),
        }
    }
}

/// What the die said about one put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the bytes.
    Drop,
    /// Deliver now and queue a late copy.
    Duplicate,
    /// Hold the bytes; they land after the endpoint's next put.
    Hold,
}

/// A delivery deferred by a duplicate or reorder fault, replayed on the
/// endpoint's next put.
pub(crate) struct DeferredPut {
    pub(crate) region: Arc<MemoryRegion>,
    pub(crate) offset: usize,
    pub(crate) dst_addr: u64,
    pub(crate) data: Vec<u8>,
    pub(crate) publish: bool,
}

impl std::fmt::Debug for DeferredPut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferredPut")
            .field("dst_addr", &self.dst_addr)
            .field("len", &self.data.len())
            .finish()
    }
}

/// The per-endpoint half: the endpoint's own PRNG stream and its deferred
/// deliveries. Owned (`&mut`) by the endpoint, so no locking is needed.
#[derive(Debug)]
pub(crate) struct EndpointFaults {
    hook: Arc<FaultHook>,
    rng: StdRng,
    /// Duplicate copies, redelivered *before* the next put's bytes land (the
    /// copy can therefore never clobber a newer frame written by this
    /// endpoint).
    pub(crate) dups: Vec<DeferredPut>,
    /// Reorder holds, redelivered *after* the next put's bytes land (the
    /// adjacent swap).
    pub(crate) held: Vec<DeferredPut>,
}

impl EndpointFaults {
    /// Roll the seeded die for one put and bump the matching counter.
    pub(crate) fn roll(&mut self) -> FaultAction {
        let plan = self.hook.plan;
        let r: f64 = self.rng.gen();
        if r < plan.drop {
            self.hook.dropped.fetch_add(1, Ordering::Relaxed);
            FaultAction::Drop
        } else if r < plan.drop + plan.duplicate {
            self.hook.duplicated.fetch_add(1, Ordering::Relaxed);
            FaultAction::Duplicate
        } else if r < plan.drop + plan.duplicate + plan.reorder {
            self.hook.reordered.fetch_add(1, Ordering::Relaxed);
            FaultAction::Hold
        } else {
            FaultAction::Deliver
        }
    }

    pub(crate) fn note_redelivered(&self) {
        self.hook.redelivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop all deferred deliveries (between benchmark phases).
    pub(crate) fn clear(&mut self) {
        self.dups.clear();
        self.held.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation_bounds_probabilities() {
        assert!(FaultPlan::drop_only(0.05, 1).is_valid());
        assert!(FaultPlan::mixed(0.15, 1).is_valid());
        assert!(!FaultPlan::drop_only(1.5, 1).is_valid());
        assert!(!FaultPlan {
            drop: 0.5,
            duplicate: 0.4,
            reorder: 0.3,
            seed: 1
        }
        .is_valid());
        assert!(!FaultPlan::drop_only(-0.1, 1).is_valid());
    }

    #[test]
    fn rolls_are_deterministic_per_endpoint_index() {
        let plan = FaultPlan::mixed(0.6, 42);
        let a = Arc::new(FaultHook::new(plan));
        let b = Arc::new(FaultHook::new(plan));
        let mut ea = a.attach();
        let mut eb = b.attach();
        let sa: Vec<_> = (0..64).map(|_| ea.roll()).collect();
        let sb: Vec<_> = (0..64).map(|_| eb.roll()).collect();
        assert_eq!(sa, sb, "same seed + same endpoint index => same schedule");
        // A second endpoint of the same link draws a different stream.
        let mut ea2 = a.attach();
        let sa2: Vec<_> = (0..64).map(|_| ea2.roll()).collect();
        assert_ne!(sa, sa2);
    }

    #[test]
    fn counters_track_every_injected_fault() {
        let hook = Arc::new(FaultHook::new(FaultPlan::mixed(0.9, 7)));
        let mut ep = hook.attach();
        let mut expect = FaultSnapshot::default();
        for _ in 0..200 {
            match ep.roll() {
                FaultAction::Drop => expect.dropped += 1,
                FaultAction::Duplicate => expect.duplicated += 1,
                FaultAction::Hold => expect.reordered += 1,
                FaultAction::Deliver => {}
            }
        }
        assert_eq!(hook.snapshot(), expect);
        assert!(expect.dropped > 0 && expect.duplicated > 0 && expect.reordered > 0);
        ep.note_redelivered();
        assert_eq!(hook.snapshot().redelivered, 1);
    }

    #[test]
    fn zero_probability_plan_never_faults() {
        let hook = Arc::new(FaultHook::new(FaultPlan::drop_only(0.0, 3)));
        let mut ep = hook.attach();
        for _ in 0..500 {
            assert_eq!(ep.roll(), FaultAction::Deliver);
        }
        assert_eq!(hook.snapshot(), FaultSnapshot::default());
    }
}
