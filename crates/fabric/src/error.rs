//! Error types for fabric operations.

use std::fmt;

/// Result alias for fabric operations.
pub type FabricResult<T> = Result<T, FabricError>;

/// Errors surfaced by the simulated fabric. These mirror the failure modes of a real
/// RDMA stack: bad keys and permission violations are rejected "at the hardware
/// level" (the paper, §V), and malformed requests are caught before they are posted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The RKEY presented with a remote access does not match the target region.
    InvalidRkey {
        /// The key that was presented.
        presented: u32,
    },
    /// The RKEY is valid but the requested operation is not permitted by the
    /// permissions the region was registered with.
    PermissionDenied {
        /// Human-readable description of the attempted operation.
        op: &'static str,
    },
    /// The access falls outside the registered region.
    OutOfBounds {
        /// Start offset of the attempted access.
        offset: usize,
        /// Length of the attempted access.
        len: usize,
        /// Size of the region.
        region_len: usize,
    },
    /// Referenced a host that does not exist in the fabric.
    NoSuchHost(usize),
    /// Referenced a region that has been deregistered or never existed.
    NoSuchRegion(u32),
    /// An endpoint was asked to reach a host it is not connected to.
    NotConnected {
        /// Source host.
        from: usize,
        /// Destination host.
        to: usize,
    },
    /// Attempted to register a zero-length region or otherwise malformed request.
    InvalidArgument(&'static str),
    /// Atomic operations must be naturally aligned to 8 bytes.
    Misaligned {
        /// Offending offset.
        offset: usize,
    },
    /// A tracked operation could not be posted because its completion queue is
    /// full: the initiator must harvest completions before issuing more work (the
    /// transmit-queue back-pressure that throttles a streaming sender).
    CompletionBackpressure {
        /// Depth of the full queue.
        capacity: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidRkey { presented } => {
                write!(f, "remote access rejected: invalid rkey {presented:#010x}")
            }
            FabricError::PermissionDenied { op } => {
                write!(f, "remote access rejected: permission denied for {op}")
            }
            FabricError::OutOfBounds { offset, len, region_len } => write!(
                f,
                "remote access out of bounds: offset {offset} len {len} exceeds region of {region_len} bytes"
            ),
            FabricError::NoSuchHost(h) => write!(f, "no such host: {h}"),
            FabricError::NoSuchRegion(k) => write!(f, "no such region for rkey {k:#010x}"),
            FabricError::NotConnected { from, to } => {
                write!(f, "host {from} has no endpoint to host {to}")
            }
            FabricError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            FabricError::Misaligned { offset } => {
                write!(f, "atomic access misaligned at offset {offset}")
            }
            FabricError::CompletionBackpressure { capacity } => {
                write!(
                    f,
                    "completion queue full ({capacity} outstanding): harvest before posting"
                )
            }
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let cases: Vec<(FabricError, &str)> = vec![
            (
                FabricError::InvalidRkey { presented: 0xdead },
                "invalid rkey",
            ),
            (
                FabricError::PermissionDenied { op: "put" },
                "permission denied for put",
            ),
            (
                FabricError::OutOfBounds {
                    offset: 10,
                    len: 20,
                    region_len: 16,
                },
                "out of bounds",
            ),
            (FabricError::NoSuchHost(3), "no such host"),
            (FabricError::NoSuchRegion(7), "no such region"),
            (FabricError::NotConnected { from: 0, to: 1 }, "no endpoint"),
            (FabricError::InvalidArgument("zero length"), "zero length"),
            (FabricError::Misaligned { offset: 3 }, "misaligned"),
            (
                FabricError::CompletionBackpressure { capacity: 256 },
                "completion queue full",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&FabricError::NoSuchHost(0));
    }
}
