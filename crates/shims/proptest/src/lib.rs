//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace-local shim
//! implements the pieces the property tests use: the [`Strategy`] trait with
//! `prop_map`, range/tuple/`Just`/`any` strategies, `prop::collection::vec`,
//! `prop_oneof!`, and the `proptest!` test macro with `ProptestConfig::with_cases`.
//! Generation is deterministic per test name; there is no shrinking — a failing case
//! panics with the generated values visible in the assertion message.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name so every run generates the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The subset of proptest's `Strategy` this workspace uses.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (the [`prop_oneof!`] backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniformly choose between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

/// Assert inside a property (maps to `assert!`; failures panic, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// test that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..17, y in 0u64..1000) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u64),
            Just(99u64),
            any::<u64>(),
        ]) {
            let _ = v;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
