//! Offline drop-in subset of the `rand` API.
//!
//! The build environment has no access to crates.io, so this workspace-local shim
//! provides the pieces the memsim crate uses: a deterministic [`rngs::StdRng`] seeded
//! with [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen::<f64>()` and
//! `gen_range(a..b)`. The generator is SplitMix64 — not the real StdRng stream, but
//! every consumer in this workspace only relies on determinism for a fixed seed, not
//! on matching upstream rand's output.

#![warn(missing_docs)]

/// Types that can be sampled uniformly from an [`Rng`]'s raw output.
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable with [`Rng::gen_range`] over a half-open `a..b` range.
pub trait SampleRange: Sized + PartialOrd {
    /// Draw one value uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleRange for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span.max(1)) as $t
            }
        }
    )*};
}
int_sample_range!(u64, u32, usize);

/// The subset of rand's `Rng` trait this workspace uses.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniform value of type `T` (`f64` in `[0, 1)`, full range for ints).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from the half-open range `lo..hi` (must be non-empty).
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }
}

/// The subset of rand's `SeedableRng` trait this workspace uses.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(1.0..12.0);
            assert!((1.0..12.0).contains(&x));
            let n = r.gen_range(3u64..17);
            assert!((3..17).contains(&n));
        }
    }
}
