//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this workspace-local shim
//! provides the pieces the fabric crate uses: [`Mutex`] and [`RwLock`] whose guards
//! are returned directly (no `Result` / poisoning, matching parking_lot semantics —
//! a poisoned std lock is simply recovered).

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access to the lock).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
