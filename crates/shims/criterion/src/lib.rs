//! Offline drop-in subset of the `criterion` bench API.
//!
//! The build environment has no access to crates.io, so this workspace-local shim
//! implements the pieces the bench crate uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId::new`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurements are simple wall-clock samples printed as a
//! text report — enough to track relative movement and to keep the benches compiling
//! and runnable in CI (set `CRITERION_SMOKE=1` to run one sample per benchmark).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort on stable).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `label/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function label and an input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs and times the routine.
pub struct Bencher<'a> {
    samples: usize,
    results_ns: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `routine` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (ignored in smoke mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim warms up with a single call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim bounds work by sample count only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let smoke = std::env::var_os("CRITERION_SMOKE").is_some();
        let samples = if smoke { 1 } else { self.sample_size };
        let mut results_ns = Vec::with_capacity(samples);
        let mut bencher = Bencher {
            samples,
            results_ns: &mut results_ns,
        };
        f(&mut bencher, input);
        results_ns.sort_by(|a, b| a.total_cmp(b));
        let median = results_ns.get(results_ns.len() / 2).copied().unwrap_or(0.0);
        println!(
            "bench {}/{}: median {:.1} ns ({} samples)",
            self.name,
            id.label,
            median,
            results_ns.len()
        );
        self
    }

    /// Finish the group (report flushing is a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` configuration object.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions under a group name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion;
        sample_bench(&mut c);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
