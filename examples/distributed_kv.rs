//! A miniature distributed key-value store built on the Indirect Put jam,
//! written by a multi-stream sender fleet and drained with the multi-shard
//! burst API — fill and drain overlapping as a real pipeline.
//!
//! ```text
//! cargo run --example distributed_kv
//! ```
//!
//! This is the workload the paper motivates with graph stores and index tables
//! (§VI-B2): every write goes through a level of indirection (a hash probe) that has
//! to happen *next to the data*. The client injects the Indirect Put function, which
//! probes the server's hash-table ried, claims a slot for the key, and copies the
//! value there — one network operation per write, no round trip for the index lookup.
//!
//! The server runs the sharded receiver in **shard-local space mode**: 4 shards
//! own one mailbox bank each (`bank % 4`), and each shard owns a private
//! instance of the KV table ried, so draining takes no address-space lock and no
//! cache-hierarchy lock. The client side is a [`SenderFleet`]: one sender lane
//! per shard stream (its own endpoint, template cache and completion window),
//! wired in one `connect_fleet` session exchange. Because the key→bank route
//! (`key % 4`) is the same map both sides partition by, every key consistently
//! lands in the same lane's stream *and* the same shard's table — a
//! shard-partitioned KV store whose write batches run through
//! [`drive_pipeline`]: lane threads keep filling while drain threads execute,
//! with per-slot credits returned as one-sided puts into each lane's own
//! registered flag region (§VI-A2) the moment a slot is free.

use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{drive_pipeline, spec, InvocationMode, RuntimeConfig, SenderFleet, TwoChainsHost};
use twochains_fabric::SimFabric;
use twochains_memsim::TestbedConfig;

fn main() {
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let num_shards = 4;
    let mut server = TwoChainsHost::new(
        &fabric,
        server_id,
        RuntimeConfig::paper_default()
            .with_shards(num_shards)
            .with_shard_local_space()
            .with_sender_streams(num_shards),
    )
    .expect("server");
    server
        .install_package(benchmark_package().unwrap())
        .unwrap();
    // The session handshake wires everything at once — per-stream mailbox
    // targets, the receiver-resolved GOT image of every package element, the
    // credit tables and NACK arming — or fails loudly listing every missing
    // piece; a partially wired fleet cannot exist.
    let mut client = SenderFleet::connect_fleet(
        &fabric,
        client_id,
        &mut server,
        benchmark_package().unwrap(),
    )
    .expect("fleet");
    let jam = server.builtin_id(BuiltinJam::IndirectPut).unwrap();
    println!(
        "client fleet: {} lanes, one per server shard",
        client.lane_count()
    );

    // One pipelined batch: every mailbox carries one write. Key k lives at
    // bank k % 4 (stream and shard k % 4), slot k / 4; values are 64-byte
    // records derived from the key. Lane threads fill while drain threads
    // execute — the per-slot credits mean a second batch could start flowing
    // into a slot the moment its first write is done.
    let banks = server.config().banks;
    let keys = banks * server.config().mailboxes_per_bank;
    let out = drive_pipeline(
        &mut server,
        &mut client,
        jam,
        InvocationMode::Injected,
        1,
        &|ctx| {
            let key = (ctx.bank + banks * ctx.slot) as u64;
            let value: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(key as u8 + 1)).collect();
            (indirect_put_args(key, 16, 4), value)
        },
    )
    .expect("pipelined batch");
    assert_eq!(out.drained, keys);
    assert_eq!(out.rejected, 0);

    // (bank, slot) on each drained frame recovers which key the write was for.
    let mut offsets = vec![0u64; keys];
    for frame in &out.results {
        offsets[frame.bank + banks * frame.slot] = frame.result;
    }
    let distinct: std::collections::HashSet<u64> = offsets.iter().copied().collect();
    println!(
        "pipelined batch wrote {keys} keys into {} distinct server-side slots",
        distinct.len()
    );
    assert_eq!(distinct.len(), keys);

    // A targeted rewrite goes through the owning lane's single-slot path: key 7
    // lives in bank 3 (stream and shard 3), and the per-stream completion
    // window flow-controls just that lane.
    let key = 7usize;
    let (bank, slot) = (key % banks, key / banks);
    let rewrite = vec![0xEEu8; 64];
    let mut handles = client.handles();
    let msg = spec(jam)
        .mode(InvocationMode::Injected)
        .args(indirect_put_args(key as u64, 16, 4))
        .usr(rewrite);
    let sent = handles[bank % num_shards]
        .send_spec(bank, slot, &msg)
        .expect("rewrite");
    drop(handles);
    let burst = server
        .receive_burst(bank % num_shards, usize::MAX, sent.delivered())
        .unwrap();
    assert_eq!(burst.len(), 1);
    let rewrite_out = &burst.frames[0].outcome;
    println!(
        "rewrite of key {key} landed at the same offset: {}",
        rewrite_out.result == offsets[key]
    );
    assert_eq!(rewrite_out.result, offsets[key]);

    println!("server executed {} jams", server.stats().executions);
    for shard in 0..num_shards {
        let cursor = server
            .read_shard_data(shard, "table.data", 0, 8)
            .expect("shard table cursor");
        let lane = client.lane(shard).unwrap();
        println!(
            "shard {shard}: table bump cursor {} bytes (private instance); \
             lane {shard} sent {} writes ({} template miss)",
            u64::from_le_bytes(cursor.try_into().unwrap()),
            lane.stats().messages_sent,
            lane.stats().template_misses,
        );
    }
    let fleet_stats = client.stats();
    println!(
        "fleet totals: {} writes, {} bytes, {} back-pressure stalls",
        fleet_stats.messages_sent, fleet_stats.bytes_sent, fleet_stats.sends_backpressured
    );
    println!(
        "shared caches: {} decode miss, {} hits across all shards",
        server.stats().injected_code_cache_misses,
        server.stats().injected_code_cache_hits
    );
}
