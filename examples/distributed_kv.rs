//! A miniature distributed key-value store built on the Indirect Put jam, drained
//! with the multi-shard burst API.
//!
//! ```text
//! cargo run --example distributed_kv
//! ```
//!
//! This is the workload the paper motivates with graph stores and index tables
//! (§VI-B2): every write goes through a level of indirection (a hash probe) that has
//! to happen *next to the data*. The client injects the Indirect Put function, which
//! probes the server's hash-table ried, claims a slot for the key, and copies the
//! value there — one network operation per write, no round trip for the index lookup.
//!
//! The server here runs the sharded receiver in **shard-local space mode**: 4
//! shards own one mailbox bank each (`bank % 4`), and each shard owns a private
//! instance of the KV table ried, so draining takes no address-space lock and no
//! cache-hierarchy lock — each drain core charges its own private L1/L2 and only
//! escalates misses to the striped shared levels. The client scatters a batch of
//! writes across the banks; because the key→bank route is deterministic
//! (`key % 4`), every key consistently lands in the same shard's table — a
//! shard-partitioned KV store, which is exactly the layout that lets the
//! multi-threaded drain scale in wall clock.

use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{SimTime, TestbedConfig};

fn main() {
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let num_shards = 4;
    let mut server = TwoChainsHost::new(
        &fabric,
        server_id,
        RuntimeConfig::paper_default()
            .with_shards(num_shards)
            .with_shard_local_space(),
    )
    .expect("server");
    server
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let mut client = TwoChainsSender::new(
        fabric.endpoint(client_id, server_id).unwrap(),
        benchmark_package().unwrap(),
    );
    let jam = server.builtin_id(BuiltinJam::IndirectPut).unwrap();
    client.set_remote_got(jam, &server.export_got(jam).unwrap());

    // Scatter 32 key/value writes across the banks: key k lands in bank k % 4
    // (owned by shard k % 4), slot k / 4. Values are 64-byte records.
    let banks = server.config().banks;
    let mut clock = SimTime::ZERO;
    let mut delivered = SimTime::ZERO;
    for key in 0u64..32 {
        let value: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(key as u8 + 1)).collect();
        let (bank, slot) = ((key as usize) % banks, (key as usize) / banks);
        let target = server.mailbox_target(bank, slot).unwrap();
        let sent = client
            .send_message(
                clock,
                jam,
                InvocationMode::Injected,
                &indirect_put_args(key, 16, 4),
                &value,
                &target,
            )
            .unwrap();
        clock = sent.sender_free();
        delivered = delivered.max(sent.delivered());
    }

    // Each shard drains its bank in one burst scan; (bank, slot) on the drained
    // frame recovers which key the write was for.
    let mut offsets = vec![0u64; 32];
    let mut drained_at = delivered;
    for shard in 0..num_shards {
        let burst = server.receive_burst(shard, usize::MAX, delivered).unwrap();
        assert!(burst.rejected.is_empty());
        println!(
            "shard {shard} drained {} writes from its banks in one scan",
            burst.len()
        );
        for frame in &burst.frames {
            let key = frame.bank + banks * frame.slot;
            offsets[key] = frame.outcome.result;
        }
        drained_at = drained_at.max(burst.drained_at);
    }

    // Every key got its own slot in the server's table, and rewriting a key reuses it.
    let distinct: std::collections::HashSet<u64> = offsets.iter().copied().collect();
    println!(
        "wrote 32 keys into {} distinct server-side slots",
        distinct.len()
    );
    assert_eq!(distinct.len(), 32);

    let rewrite: Vec<u8> = vec![0xEE; 64];
    let target = server.mailbox_target(7 % banks, 7 / banks).unwrap();
    let sent = client
        .send_message(
            clock,
            jam,
            InvocationMode::Injected,
            &indirect_put_args(7, 16, 4),
            &rewrite,
            &target,
        )
        .unwrap();
    // Key 7 lives in bank 3, owned by shard 3: its burst picks the rewrite up.
    let burst = server
        .receive_burst(7 % num_shards, usize::MAX, drained_at.max(sent.delivered()))
        .unwrap();
    assert_eq!(burst.len(), 1);
    let out = &burst.frames[0].outcome;
    println!(
        "rewrite of key 7 landed at the same offset: {}",
        out.result == offsets[7]
    );
    assert_eq!(out.result, offsets[7]);

    println!(
        "total virtual time for 33 injected writes: {}",
        burst.drained_at
    );
    println!("server executed {} jams", server.stats().executions);
    for shard in 0..num_shards {
        let cursor = server
            .read_shard_data(shard, "table.data", 0, 8)
            .expect("shard table cursor");
        println!(
            "shard {shard} table bump cursor: {} bytes (its own private instance)",
            u64::from_le_bytes(cursor.try_into().unwrap())
        );
    }
    println!(
        "shared caches: {} decode miss, {} hits across all shards",
        server.stats().injected_code_cache_misses,
        server.stats().injected_code_cache_hits
    );
}
