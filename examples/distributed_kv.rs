//! A miniature distributed key-value store built on the Indirect Put jam.
//!
//! ```text
//! cargo run --example distributed_kv
//! ```
//!
//! This is the workload the paper motivates with graph stores and index tables
//! (§VI-B2): every write goes through a level of indirection (a hash probe) that has
//! to happen *next to the data*. The client injects the Indirect Put function, which
//! probes the server's hash-table ried, claims a slot for the key, and copies the
//! value there — one network operation per write, no round trip for the index lookup.

use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{SimTime, TestbedConfig};

fn main() {
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut server =
        TwoChainsHost::new(&fabric, server_id, RuntimeConfig::paper_default()).expect("server");
    server
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let mut client = TwoChainsSender::new(
        fabric.endpoint(client_id, server_id).unwrap(),
        benchmark_package().unwrap(),
    );
    let jam = server.builtin_id(BuiltinJam::IndirectPut).unwrap();
    client.set_remote_got(jam, &server.export_got(jam).unwrap());

    // Write 32 key/value pairs; values are 64-byte records.
    let mut clock = SimTime::ZERO;
    let mut ready = SimTime::ZERO;
    let mut offsets = Vec::new();
    for key in 0u64..32 {
        let value: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(key as u8 + 1)).collect();
        let frame = client
            .pack(
                jam,
                InvocationMode::Injected,
                indirect_put_args(key, 16, 4),
                value,
            )
            .unwrap();
        let target = server.mailbox_target(0, (key % 16) as usize).unwrap();
        let sent = client.send(clock, &frame, &target).unwrap();
        clock = sent.sender_free();
        let out = server
            .receive(
                0,
                (key % 16) as usize,
                Some(frame.wire_size()),
                sent.delivered(),
                ready,
            )
            .unwrap();
        ready = out.handler_done;
        offsets.push(out.result);
    }

    // Every key got its own slot in the server's table, and rewriting a key reuses it.
    let distinct: std::collections::HashSet<u64> = offsets.iter().copied().collect();
    println!(
        "wrote 32 keys into {} distinct server-side slots",
        distinct.len()
    );
    assert_eq!(distinct.len(), 32);

    let rewrite: Vec<u8> = vec![0xEE; 64];
    let frame = client
        .pack(
            jam,
            InvocationMode::Injected,
            indirect_put_args(7, 16, 4),
            rewrite,
        )
        .unwrap();
    let target = server.mailbox_target(0, 0).unwrap();
    let sent = client.send(clock, &frame, &target).unwrap();
    let out = server
        .receive(0, 0, Some(frame.wire_size()), sent.delivered(), ready)
        .unwrap();
    println!(
        "rewrite of key 7 landed at the same offset: {}",
        out.result == offsets[7]
    );
    assert_eq!(out.result, offsets[7]);

    println!(
        "total virtual time for 33 injected writes: {}",
        out.handler_done
    );
    println!("server executed {} jams", server.stats().executions);
}
