//! Live update via ried reloading: change what a symbolic name means on one process
//! without restarting anything, and without touching the sender.
//!
//! ```text
//! cargo run --example live_update
//! ```
//!
//! Remote runtime linking "allows distributed application updates to sub-processes of
//! the application that alter subsequent active message behavior (without re-starting
//! the process) by loading a library into a process to change the resolution of
//! objects or functions with fixed symbolic names" (§III). Here the server first
//! resolves `array.append` to the stock implementation, then hot-reloads a ried that
//! binds the same name to a saturating variant; in-flight GOT images keep working
//! because reloads preserve extern indices.

use std::sync::Arc;

use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam, ARRAY_SLOTS};
use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_linker::RiedBuilder;
use twochains_memsim::{SimTime, TestbedConfig};

fn main() {
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut server =
        TwoChainsHost::new(&fabric, server_id, RuntimeConfig::paper_default()).expect("server");
    server
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let mut client = TwoChainsSender::new(
        fabric.endpoint(client_id, server_id).unwrap(),
        benchmark_package().unwrap(),
    );
    let jam = server.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    client.set_remote_got(jam, &server.export_got(jam).unwrap());
    let target = server.mailbox_target(0, 0).unwrap();

    let send = |client: &mut TwoChainsSender, server: &mut TwoChainsHost, values: &[u32]| {
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let frame = client
            .pack(
                jam,
                InvocationMode::Injected,
                ssum_args(values.len() as u32),
                payload,
            )
            .unwrap();
        let sent = client.send(SimTime::ZERO, &frame, &target).unwrap();
        server
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                sent.delivered(),
                SimTime::ZERO,
            )
            .unwrap()
            .result
    };

    // Before the update: array.append stores the raw sum.
    let before = send(&mut client, &mut server, &[600, 600]);
    println!("sum with stock ried           : {before}");

    // Hot-reload ried_array: the new `array.append` clamps stored values to 1000.
    let v2 = RiedBuilder::new("ried_array")
        .version(2)
        .export_heap("array.base", 8 + ARRAY_SLOTS * 8)
        .export_fn(
            "array.append",
            Arc::new(|ctx, args| {
                let sum = args.first().copied().unwrap_or(0).min(1000);
                let base = ctx
                    .space
                    .segment_meta("array.base")
                    .ok_or("array.base not mapped")?
                    .base;
                let counter = ctx.read_u64(base)?;
                let slot = counter % ARRAY_SLOTS as u64;
                ctx.write_u64(base + 8 + slot * 8, sum)?;
                ctx.write_u64(base, counter + 1)?;
                Ok(slot)
            }),
        )
        .build();
    server.load_ried(&v2, true).expect("hot reload");
    println!("reloaded ried_array to version 2 (saturating append)");

    // The client keeps using the GOT image it already has — no re-exchange needed.
    let after = send(&mut client, &mut server, &[600, 600]);
    println!("sum with updated ried         : {after}");

    // The jam's own result (the sum) is unchanged; what changed is the server-side
    // behaviour behind the fixed symbolic name.
    let stored = server.read_data("array.base", 8 + 8, 8).unwrap();
    let stored = u64::from_le_bytes(stored.try_into().unwrap());
    println!("value stored by updated append: {stored}");
    assert_eq!(before, 1200);
    assert_eq!(after, 1200);
    assert_eq!(
        stored, 1000,
        "the reloaded implementation saturates at 1000"
    );
}
