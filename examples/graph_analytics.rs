//! Irregular graph-analytics workload on receiver-side function chains: the
//! lookup → filter → aggregate pipeline runs entirely next to the data, in one
//! injected round trip per item.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```
//!
//! The paper's motivating applications are "large-scale irregular applications
//! composed of many coordinating tasks that operate on a shared data set" —
//! tiny data-dependent stages whose intermediate values are worthless to the
//! client. Shipping each stage as its own message drags every intermediate
//! across the fabric and pays frame parse + cache probes per stage. A chained
//! frame names the whole pipeline up front: the receiver executes stage k,
//! stores its result in a per-chain context cell, and dispatches stage k+1
//! through the Local Function library — one frame, one mailbox wait, one
//! parse, N stages.
//!
//! Both schedules below process the identical update stream through the
//! identical stages; the example checks they are result- and side-effect-equal
//! and reports how much dispatch the chain amortises away.

use twochains::builtin::{benchmark_package, graph_args, BuiltinJam};
use twochains::{spec, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{SimTime, TestbedConfig};

const STAGES: usize = 3;

fn build() -> (TwoChainsHost, TwoChainsSender) {
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut server = TwoChainsHost::new(&fabric, server_id, RuntimeConfig::paper_default())
        .expect("server runtime");
    server
        .install_package(benchmark_package().expect("package"))
        .expect("install package");
    let mut client = TwoChainsSender::new(
        fabric.endpoint(client_id, server_id).expect("endpoint"),
        benchmark_package().expect("package"),
    );
    for jam in [
        BuiltinJam::GraphLookup,
        BuiltinJam::GraphFilter,
        BuiltinJam::GraphAggregate,
    ] {
        let id = server.builtin_id(jam).expect("jam id");
        client.set_remote_got(id, &server.export_got(id).expect("exported GOT"));
    }
    (server, client)
}

fn main() {
    let updates = 256u64;
    println!("graph-update stream: {updates} items through lookup -> filter -> aggregate\n");

    // Schedule A — three separate injected messages per item. Every stage is a
    // full round trip: the intermediate result must come back to the client
    // just to be re-sent as the next stage's 8-byte operand.
    let (mut server_seq, mut client_seq) = build();
    let target = server_seq.mailbox_target(0, 0).expect("mailbox");
    let stages = [
        server_seq.builtin_id(BuiltinJam::GraphLookup).unwrap(),
        server_seq.builtin_id(BuiltinJam::GraphFilter).unwrap(),
        server_seq.builtin_id(BuiltinJam::GraphAggregate).unwrap(),
    ];
    let mut seq_results = Vec::new();
    let mut seq_dispatch = SimTime::ZERO;
    for key in 0..updates {
        let mut carried = key;
        for elem in stages {
            let msg = spec(elem)
                .mode(InvocationMode::Injected)
                .args(graph_args(carried));
            let sent = client_seq
                .send_spec(SimTime::ZERO, &msg, &target)
                .expect("send");
            let out = server_seq
                .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
                .expect("receive");
            seq_dispatch += out.dispatch_time;
            carried = out.result;
        }
        seq_results.push(carried);
    }

    // Schedule B — one chained frame per item: the spec names the pipeline,
    // the receiver threads each stage's result into the next stage's entry
    // registers through the per-chain context cell. One round trip per item.
    let (mut server_chain, mut client_chain) = build();
    let target = server_chain.mailbox_target(0, 0).expect("mailbox");
    let mut chain_results = Vec::new();
    let mut chain_dispatch = SimTime::ZERO;
    for key in 0..updates {
        let msg = spec(stages[0])
            .mode(InvocationMode::Injected)
            .args(graph_args(key))
            .then(stages[1])
            .then(stages[2]);
        let sent = client_chain
            .send_spec(SimTime::ZERO, &msg, &target)
            .expect("send");
        let out = server_chain
            .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
            .expect("receive");
        chain_dispatch += out.dispatch_time;
        chain_results.push(out.result);
    }

    // Same pipeline, same answers, same aggregate state next to the data.
    assert_eq!(seq_results, chain_results, "schedules must be result-equal");
    let accum_seq = server_seq.read_data("graph.accum", 0, 16).unwrap();
    let accum_chain = server_chain.read_data("graph.accum", 0, 16).unwrap();
    assert_eq!(accum_seq, accum_chain, "aggregate oracles must match");
    let aggregated = u64::from_le_bytes(accum_chain[0..8].try_into().unwrap());
    let weight_sum = u64::from_le_bytes(accum_chain[8..16].try_into().unwrap());

    let st_seq = server_seq.stats();
    let st_chain = server_chain.stats();
    assert_eq!(
        st_seq.executions, st_chain.executions,
        "identical stage work"
    );
    assert_eq!(st_chain.chain_frames, updates);
    assert_eq!(
        st_chain.chain_stages_executed,
        (STAGES as u64 - 1) * updates
    );

    let seq_per_stage = seq_dispatch.as_ns() / (updates as f64 * STAGES as f64);
    let chain_per_stage = chain_dispatch.as_ns() / (updates as f64 * STAGES as f64);
    let amortization = seq_per_stage / chain_per_stage;

    println!(
        "{:<28} {:>10} {:>12} {:>16}",
        "schedule", "frames", "round trips", "dispatch/stage"
    );
    println!(
        "{:<28} {:>10} {:>12} {:>13.0} ns",
        "one message per stage",
        st_seq.messages_received,
        updates * STAGES as u64,
        seq_per_stage
    );
    println!(
        "{:<28} {:>10} {:>12} {:>13.0} ns",
        "chained (one frame)", st_chain.messages_received, updates, chain_per_stage
    );
    println!(
        "\naggregate at the server : {aggregated} items folded in, filtered weight sum {weight_sum}"
    );
    println!("per-stage dispatch amortization: {amortization:.2}x");
    assert!(
        amortization >= 2.0,
        "chained dispatch must amortise >=2x over per-stage messages"
    );
}
