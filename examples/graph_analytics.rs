//! Irregular graph-analytics style workload: push the computation to where the data
//! lives and compare Injected vs Local invocation and stashing on/off.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```
//!
//! The paper's motivating applications are "large-scale irregular applications
//! composed of many coordinating tasks that operate on a shared data set" — unordered
//! concurrent writes to arbitrary locations, tiny tasks, data-dependent behaviour.
//! This example emulates a stream of per-edge updates (key = destination vertex,
//! payload = edge weights) fired at a server partition, and reports the sustained
//! message rate under the four configurations the paper's evaluation explores.

use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{InjectionRate, TestbedOptions};

fn main() {
    let updates = 400;
    let weights_per_edge = 16; // 64-byte payload

    println!("graph-update stream: {updates} updates, {weights_per_edge} weights each\n");
    println!("{:<34} {:>14} {:>12}", "configuration", "msg/s", "MiB/s");

    let configs: [(&str, TestbedOptions, InvocationMode); 4] = [
        (
            "Injected + LLC stashing",
            TestbedOptions::default(),
            InvocationMode::Injected,
        ),
        (
            "Injected, stashing disabled",
            TestbedOptions::default().nonstash(),
            InvocationMode::Injected,
        ),
        (
            "Local + LLC stashing",
            TestbedOptions::default(),
            InvocationMode::Local,
        ),
        (
            "Local, stashing disabled",
            TestbedOptions::default().nonstash(),
            InvocationMode::Local,
        ),
    ];

    let mut rates = Vec::new();
    for (label, opts, mode) in configs {
        let mut harness = InjectionRate::new(opts);
        let r = harness.run(BuiltinJam::IndirectPut, mode, weights_per_edge, updates);
        println!(
            "{label:<34} {:>14.0} {:>12.1}",
            r.messages_per_sec, r.bandwidth_mib_s
        );
        rates.push(r.messages_per_sec);
    }

    // The paper's qualitative findings hold: stashing helps the injected path most,
    // and small-payload injected messages trade some rate for the flexibility of
    // carrying their own code.
    assert!(
        rates[0] > rates[1],
        "stashing should raise the injected message rate"
    );
    assert!(
        rates[2] > rates[0],
        "local invocation avoids shipping code for tiny payloads"
    );
    println!(
        "\nstashing speedup for injected updates: {:.2}x",
        rates[0] / rates[1]
    );
}
