//! Quickstart: inject a function over the (simulated) RDMA fabric and execute it on
//! the remote host.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example builds the paper's two-server back-to-back testbed, installs the
//! benchmark package on the receiver, and sends one *Injected Function* Server-Side
//! Sum active message: the function bytecode, its patched GOT, the arguments and the
//! payload all travel in a single one-sided put into a reactive mailbox, and the
//! receiver executes the function the moment the signal byte lands.

use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
use twochains::{spec, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{SimTime, TestbedConfig};

fn main() {
    // 1. The paper's testbed: two Arm servers, ConnectX-6 back to back, LLC stashing.
    let (fabric, client_id, server_id) = SimFabric::back_to_back(TestbedConfig::cluster2021());

    // 2. The server installs the benchmark package: its rieds (array + table) are
    //    loaded into the per-process namespace, and the Local Function library is
    //    built from the same jam definitions.
    let mut server = TwoChainsHost::new(&fabric, server_id, RuntimeConfig::paper_default())
        .expect("server runtime");
    server
        .install_package(benchmark_package().expect("package"))
        .expect("install package");

    // 3. The client connects and learns, out of band, where the server's mailbox is
    //    and what the resolved GOT image for the jam looks like on the server.
    let mut client = TwoChainsSender::new(
        fabric.endpoint(client_id, server_id).expect("endpoint"),
        benchmark_package().expect("package"),
    );
    let jam = server
        .builtin_id(BuiltinJam::ServerSideSum)
        .expect("jam id");
    client.set_remote_got(jam, &server.export_got(jam).expect("exported GOT"));
    let mailbox = server.mailbox_target(0, 0).expect("mailbox");

    // 4. Describe and inject: the message spec is the single construction path
    //    for every send — 16 integers of payload plus 256 bytes of function code.
    let payload: Vec<u8> = (1u32..=16).flat_map(|v| v.to_le_bytes()).collect();
    let msg = spec(jam)
        .mode(InvocationMode::Injected)
        .args(ssum_args(16))
        .usr(payload);
    let sent = client
        .send_spec(SimTime::ZERO, &msg, &mailbox)
        .expect("send");
    println!(
        "frame on the wire : {} bytes (code+GOT = {} bytes)",
        sent.wire_bytes,
        BuiltinJam::ServerSideSum.shipped_code_bytes()
    );
    println!("delivered at      : {}", sent.delivered());

    // 5. The server's receiver thread wakes on the signal byte and runs the function.
    let out = server
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .expect("receive");
    println!(
        "sum computed      : {} (expected {})",
        out.result,
        (1..=16u64).sum::<u64>()
    );
    println!("one-way latency   : {}", out.handler_done);
    println!("handler time      : {}", out.handler_time);

    // 6. The result was appended to the server-side array exported by `ried_array`.
    let slot0 = server.read_data("array.base", 8, 8).expect("server array");
    println!(
        "server array[0]   : {}",
        u64::from_le_bytes(slot0.try_into().unwrap())
    );
    assert_eq!(out.result, 136);
}
