//! Token conservation under coalesced credit returns.
//!
//! The flush policy batches how credit tokens ride the reverse fabric — it
//! must never change *how many* ride, or *whether* they arrive. Every retired
//! frame — drained, dispatch-rejected, quarantined, or a suppressed replay —
//! yields exactly one observable token in the owning lane's credit table,
//! under both flush policies, and no token is ever withheld across a burst
//! boundary (the mid-burst abort case: a burst cut short after a single frame
//! still publishes that frame's token before control returns).
//!
//! The oracle is the sender's own view: [`SenderLane::credit_pending`] reads
//! the per-slot token byte exactly as the refill spin loop would, so a token
//! counted here is a token a real sender could spend. Minted-but-unflushed
//! tokens are invisible to it — which is precisely the bug class this suite
//! exists to catch.

use two_chains_suite::fabric::{FaultPlan, SimFabric};
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
use twochains::frame::FRAME_HEADER_SIZE;
use twochains::{
    drive_pipeline, CreditFlushPolicy, Frame, InvocationMode, RuntimeConfig, SenderFleet,
    TwoChainsHost,
};

const SHARDS: usize = 2;

fn config(policy: CreditFlushPolicy) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg.credit_flush_policy = policy;
    cfg
}

fn build(policy: CreditFlushPolicy) -> (SimFabric, TwoChainsHost, SenderFleet) {
    build_with(config(policy), None)
}

fn build_with(
    cfg: RuntimeConfig,
    plan: Option<FaultPlan>,
) -> (SimFabric, TwoChainsHost, SenderFleet) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    if let Some(plan) = plan {
        fabric.install_fault_plan(a, b, plan).unwrap();
    }
    let fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    assert!(host.credit_path_installed());
    (fabric, host, fleet)
}

/// Count the tokens the sender can actually observe: one `credit_pending`
/// probe per owned mailbox, over every lane. This is the ground truth the
/// conservation law is stated against — flush accounting that disagrees with
/// this census is lying.
fn token_census(host: &TwoChainsHost, fleet: &SenderFleet) -> usize {
    let cfg = host.config();
    let mut pending = 0usize;
    for stream in 0..fleet.lane_count() {
        let lane = fleet.lane(stream).unwrap();
        for bank in (0..cfg.banks).filter(|b| b % fleet.lane_count() == stream) {
            for slot in 0..cfg.mailboxes_per_bank {
                if lane.credit_pending(bank, slot).unwrap() {
                    pending += 1;
                }
            }
        }
    }
    pending
}

/// Overwrite mailbox (`bank`, `slot`) with a poisoned header: magic set, but
/// the declared frame length out of range — retired via quarantine.
fn poison(fabric: &SimFabric, host: &TwoChainsHost, bank: usize, slot: usize) {
    let mut raw = fabric
        .endpoint(
            two_chains_suite::fabric::HostId(0),
            two_chains_suite::fabric::HostId(1),
        )
        .unwrap();
    let target = host.mailbox_target(bank, slot).unwrap();
    let mut bytes = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
    bytes[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
    raw.put(
        SimTime::ZERO,
        &bytes[..FRAME_HEADER_SIZE],
        &target.region,
        target.offset,
    )
    .unwrap();
}

/// Overwrite mailbox (`bank`, `slot`) with a well-formed frame naming an
/// element the receiver never installed — retired via dispatch rejection.
fn bogus_element(fabric: &SimFabric, host: &TwoChainsHost, bank: usize, slot: usize) {
    let mut raw = fabric
        .endpoint(
            two_chains_suite::fabric::HostId(0),
            two_chains_suite::fabric::HostId(1),
        )
        .unwrap();
    let target = host.mailbox_target(bank, slot).unwrap();
    // A sequence number far above anything the fleet sends, so the replay
    // filter cannot mistake this frame for a duplicate.
    let bytes = Frame::local(0x7FFF_0000, 0xDEAD, vec![0; 20], vec![0; 4]).encode();
    raw.put(SimTime::ZERO, &bytes, &target.region, target.offset)
        .unwrap();
}

/// Drained + quarantined + rejected retirements all mint exactly one
/// sender-observable token each, whatever the flush policy batches them into.
fn assert_mixed_retirements_conserve_tokens(policy: CreditFlushPolicy) {
    // Per-frame aggregation: the sabotage below overwrites individual wire
    // slots, which only line up with individual frames when nothing batches.
    let (fabric, mut host, mut fleet) =
        build_with(config(policy).with_per_frame_aggregation(), None);
    let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let total = host.config().total_mailboxes();

    fleet
        .fill_all(elem, InvocationMode::Injected, 0, &|_| {
            (ssum_args(4), vec![5u8; 16])
        })
        .unwrap();
    // Sabotage two of the filled slots: one quarantined, one dispatch-rejected.
    poison(&fabric, &host, 0, 0);
    bogus_element(&fabric, &host, 0, 1);

    let mut drained = 0usize;
    let mut rejected = 0usize;
    for shard in 0..SHARDS {
        let out = host
            .receive_burst(shard, usize::MAX, SimTime::ZERO)
            .unwrap();
        drained += out.frames.len();
        rejected += out.rejected.len();
    }
    assert_eq!(drained, total - 2);
    assert_eq!(rejected, 2, "one quarantine + one dispatch rejection");

    let stats = host.stats();
    assert_eq!(stats.poisoned_quarantined, 1);
    assert_eq!(stats.frames_rejected, 1);
    // The conservation law: one token per retired frame, no more, no less —
    // and every one of them observable from the sender side right now.
    assert_eq!(stats.credits_returned as usize, total);
    assert_eq!(stats.credit_put_bytes as usize, total);
    assert_eq!(token_census(&host, &fleet), total);
    match policy {
        // Full banks coalesce into row spans: strictly fewer wire ops than
        // tokens is the whole point of the policy.
        CreditFlushPolicy::Adaptive => {
            assert!(stats.credit_flushes < stats.credits_returned);
            assert!(stats.credit_flush_max_span > 1);
        }
        // The uncoalesced baseline: one single-byte put per token.
        CreditFlushPolicy::PerFrame => {
            assert_eq!(stats.credit_flushes, stats.credits_returned);
            assert_eq!(stats.credit_flush_bytes, stats.credits_returned);
            assert_eq!(stats.credit_flush_max_span, 1);
        }
    }
    assert!(stats.credit_flush_bytes >= stats.credits_returned);
}

#[test]
fn mixed_retirements_conserve_tokens_under_adaptive_flushes() {
    assert_mixed_retirements_conserve_tokens(CreditFlushPolicy::Adaptive);
}

#[test]
fn mixed_retirements_conserve_tokens_under_per_frame_flushes() {
    assert_mixed_retirements_conserve_tokens(CreditFlushPolicy::PerFrame);
}

/// The mid-burst abort case: a burst capped at one frame ends its scan with
/// accumulated-but-unflushed state — the abort-safe flush at the burst
/// boundary must publish it anyway. After every single-frame burst, the
/// sender-observable census equals the retired count exactly; nothing is
/// withheld waiting for a row to fill.
#[test]
fn a_burst_cut_short_never_withholds_the_tokens_it_minted() {
    // Per-frame aggregation pins the strict shape below: one frame per scan,
    // one single-byte span per abort flush. The aggregated variant follows.
    let (_fabric, mut host, mut fleet) = build_with(
        config(CreditFlushPolicy::Adaptive).with_per_frame_aggregation(),
        None,
    );
    let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let total = host.config().total_mailboxes();

    fleet
        .fill_all(elem, InvocationMode::Injected, 0, &|_| {
            (ssum_args(4), vec![9u8; 16])
        })
        .unwrap();

    let mut retired = 0usize;
    loop {
        let before = retired;
        for shard in 0..SHARDS {
            let out = host.receive_burst(shard, 1, SimTime::ZERO).unwrap();
            assert!(out.rejected.is_empty());
            retired += out.frames.len();
            // The invariant under test: immediately after the capped burst
            // returns, every token it minted is already on the sender side.
            assert_eq!(
                token_census(&host, &fleet),
                retired,
                "a capped burst must flush before returning"
            );
        }
        if retired == before {
            break;
        }
    }
    assert_eq!(retired, total);
    let stats = host.stats();
    assert_eq!(stats.credits_returned as usize, total);
    // One-frame scans have nothing to coalesce with: the abort flush posts
    // exactly one single-byte span per burst.
    assert_eq!(stats.credit_flushes, stats.credits_returned);
    assert_eq!(stats.credit_flush_max_span, 1);
}

/// The same mid-burst abort law under the default aggregated data path: a
/// capped burst now retires one *container's* worth of inner frames, and
/// every token those frames minted must still be sender-observable before
/// control returns — with the tokens riding coalesced spans, since a
/// container's members share a bank row by construction.
#[test]
fn a_capped_burst_flushes_every_container_token_it_minted() {
    let (_fabric, mut host, mut fleet) = build(CreditFlushPolicy::Adaptive);
    let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let total = host.config().total_mailboxes();

    fleet
        .fill_all(elem, InvocationMode::Injected, 0, &|_| {
            (ssum_args(4), vec![9u8; 16])
        })
        .unwrap();

    let mut retired = 0usize;
    loop {
        let before = retired;
        for shard in 0..SHARDS {
            let out = host.receive_burst(shard, 1, SimTime::ZERO).unwrap();
            assert!(out.rejected.is_empty());
            retired += out.frames.len();
            assert_eq!(
                token_census(&host, &fleet),
                retired,
                "a capped burst must flush before returning"
            );
        }
        if retired == before {
            break;
        }
    }
    assert_eq!(retired, total);
    let stats = host.stats();
    assert_eq!(stats.credits_returned as usize, total);
    assert!(
        stats.batch_frames_received > 0,
        "the default policy must actually aggregate"
    );
    // Container retirements land as multi-token row spans, not per-byte puts.
    assert!(stats.credit_flushes < stats.credits_returned);
    assert!(stats.credit_flush_max_span > 1);
}

/// Suppressed replays re-publish an existing token idempotently: under a
/// duplicating/dropping link the pipeline still ends with exactly one token
/// per mailbox and one credit per *received* message, for both policies.
fn assert_replays_mint_nothing(policy: CreditFlushPolicy) {
    // Whether a duplicate put is *observed* as a replay depends on whether
    // the receiver scans between the two arrivals — a wall-clock race the
    // seeded plan cannot pin. Conservation must hold on every run; the
    // replay path itself only has to fire on some seed, so walk a few.
    let mut replays_seen = false;
    for attempt in 0u64..5 {
        // Per-frame aggregation: the 20% plan's replay odds are calibrated
        // against per-frame put volume; container batching divides the number
        // of wire ops the plan samples by the batch size. The aggregated
        // replay path is exercised deterministically in `tests/chaos_fabric.rs`.
        let (_fabric, mut host, mut fleet) = build_with(
            config(policy).with_per_frame_aggregation(),
            Some(FaultPlan::mixed(0.2, 0xFA_B71C + attempt)),
        );
        let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let rounds = 3;
        let total = host.config().total_mailboxes();
        let out = drive_pipeline(
            &mut host,
            &mut fleet,
            elem,
            InvocationMode::Injected,
            rounds,
            &|_| (ssum_args(4), vec![1u8; 16]),
        )
        .unwrap();
        assert_eq!(out.drained, rounds * total);
        assert_eq!(out.rejected, 0);

        let stats = host.stats();
        // Replays retire a slot but mint no fresh credit: token accounting
        // stays one per received message. Conservation is proven by
        // completion itself — rounds beyond the first can only be funded by
        // tokens that actually arrived, and the pipeline's completion harvest
        // consumed the final round's tokens one per mailbox, leaving none
        // pending and none missing.
        assert_eq!(stats.credits_returned, stats.messages_received);
        assert_eq!(stats.credits_returned as usize, rounds * total);
        assert_eq!(token_census(&host, &fleet), 0);
        assert!(stats.credit_flushes >= 1);
        assert!(stats.credit_flush_bytes >= stats.credits_returned);
        if stats.replays_suppressed > 0 {
            replays_seen = true;
            break;
        }
    }
    assert!(
        replays_seen,
        "no seed of the 20% mixed plan exercised the replay path"
    );
}

#[test]
fn replays_mint_nothing_under_adaptive_flushes() {
    assert_replays_mint_nothing(CreditFlushPolicy::Adaptive);
}

#[test]
fn replays_mint_nothing_under_per_frame_flushes() {
    assert_replays_mint_nothing(CreditFlushPolicy::PerFrame);
}

/// Overwrite mailbox (`bank`, `slot`) with a chained frame whose *primary*
/// dispatches fine (an installed graph element) but whose continuation stage
/// names an element the receiver never installed — retired mid-chain via
/// `ChainStageFailed`.
fn chained_bogus_stage(fabric: &SimFabric, host: &TwoChainsHost, bank: usize, slot: usize) {
    use twochains::builtin::{graph_args, BuiltinJam};
    use twochains::{ChainArgMap, ChainDescriptor, ChainStage};

    let mut raw = fabric
        .endpoint(
            two_chains_suite::fabric::HostId(0),
            two_chains_suite::fabric::HostId(1),
        )
        .unwrap();
    let target = host.mailbox_target(bank, slot).unwrap();
    let lookup = host.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let mut chain = ChainDescriptor::new();
    chain
        .push(ChainStage {
            elem_id: 0xDEAD,
            map: ChainArgMap::Result,
        })
        .unwrap();
    // A sequence number far above anything the fleet sends, so the replay
    // filter cannot mistake this frame for a duplicate.
    let bytes = Frame::local(0x7FFF_0000, lookup.0, graph_args(7), vec![0; 4])
        .with_chain(chain)
        .encode();
    raw.put(SimTime::ZERO, &bytes, &target.region, target.offset)
        .unwrap();
}

/// A frame rejected *mid-chain* — primary executed, continuation stage failed
/// — retires exactly like any other rejection: one `frames_rejected`, one
/// sender-observable token, the stage named in the error, and no residue from
/// the stages that did run. Token conservation must hold under both flush
/// policies.
fn assert_mid_chain_rejection_returns_one_credit(policy: CreditFlushPolicy) {
    // Per-frame aggregation: the sabotage targets one wire slot directly.
    let (fabric, mut host, mut fleet) =
        build_with(config(policy).with_per_frame_aggregation(), None);
    let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let total = host.config().total_mailboxes();

    fleet
        .fill_all(elem, InvocationMode::Injected, 0, &|_| {
            (ssum_args(4), vec![3u8; 16])
        })
        .unwrap();
    // Sabotage one filled slot with the mid-chain failure.
    chained_bogus_stage(&fabric, &host, 0, 0);

    let mut drained = 0usize;
    let mut rejected = Vec::new();
    for shard in 0..SHARDS {
        let out = host
            .receive_burst(shard, usize::MAX, SimTime::ZERO)
            .unwrap();
        drained += out.frames.len();
        rejected.extend(out.rejected);
    }
    assert_eq!(drained, total - 1);
    assert_eq!(rejected.len(), 1, "exactly the sabotaged frame");
    match &rejected[0].2 {
        twochains::AmError::ChainStageFailed { stage, reason } => {
            assert_eq!(*stage, 0, "the first continuation stage is the culprit");
            assert!(
                reason.contains("unknown package element"),
                "reason: {reason}"
            );
        }
        other => panic!("expected ChainStageFailed, got {other:?}"),
    }

    let stats = host.stats();
    assert_eq!(
        stats.frames_rejected, 1,
        "one rejection for the whole chain"
    );
    // The primary ran before the chain broke; the frame still mints exactly
    // one token, like every other retirement.
    assert_eq!(stats.credits_returned as usize, total);
    assert_eq!(token_census(&host, &fleet), total);
}

#[test]
fn mid_chain_rejections_return_one_credit_under_adaptive_flushes() {
    assert_mid_chain_rejection_returns_one_credit(CreditFlushPolicy::Adaptive);
}

#[test]
fn mid_chain_rejections_return_one_credit_under_per_frame_flushes() {
    assert_mid_chain_rejection_returns_one_credit(CreditFlushPolicy::PerFrame);
}
