//! Cross-crate integration tests: the full stack from fabric to executed jam.

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig, WaitMode};
use twochains::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};

fn testbed(cfg: RuntimeConfig) -> (TwoChainsHost, TwoChainsSender) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut receiver = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    receiver
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let mut sender =
        TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
    for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
        let id = receiver.builtin_id(jam).unwrap();
        sender.set_remote_got(id, &receiver.export_got(id).unwrap());
    }
    (receiver, sender)
}

fn ints(n: u32) -> Vec<u8> {
    (1..=n).flat_map(|v| v.to_le_bytes()).collect()
}

#[test]
fn injected_and_local_agree_across_many_messages() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let mut ready = SimTime::ZERO;
    let mut clock = SimTime::ZERO;
    for i in 1..=20u32 {
        let mode = if i % 2 == 0 {
            InvocationMode::Injected
        } else {
            InvocationMode::Local
        };
        let frame = tx.pack(id, mode, ssum_args(i), ints(i)).unwrap();
        let sent = tx.send(clock, &frame, &target).unwrap();
        clock = sent.sender_free();
        let out = rx
            .receive(0, 0, Some(frame.wire_size()), sent.delivered(), ready)
            .unwrap();
        ready = out.handler_done;
        let expected: u64 = (1..=i as u64).sum();
        assert_eq!(out.result, expected, "message {i} ({mode:?})");
    }
    assert_eq!(rx.stats().messages_received, 20);
    assert_eq!(rx.stats().injected_executions, 10);
    assert_eq!(rx.stats().local_executions, 10);
    // The server-side array recorded every sum in arrival order.
    let count = rx.read_data("array.base", 0, 8).unwrap();
    assert_eq!(u64::from_le_bytes(count.try_into().unwrap()), 20);
}

#[test]
fn indirect_put_state_survives_mode_switches_and_banks() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let banks = rx.config().banks;
    let per_bank = rx.config().mailboxes_per_bank;
    let mut ready = SimTime::ZERO;
    let mut clock = SimTime::ZERO;
    let mut offsets = std::collections::HashMap::new();
    for i in 0..40u64 {
        let key = i % 10;
        let bank = (i as usize) % banks;
        let slot = (i as usize / banks) % per_bank;
        let target = rx.mailbox_target(bank, slot).unwrap();
        let mode = if i % 3 == 0 {
            InvocationMode::Local
        } else {
            InvocationMode::Injected
        };
        let frame = tx
            .pack(id, mode, indirect_put_args(key, 8, 4), ints(8))
            .unwrap();
        let sent = tx.send(clock, &frame, &target).unwrap();
        clock = sent.sender_free();
        let out = rx
            .receive(bank, slot, Some(frame.wire_size()), sent.delivered(), ready)
            .unwrap();
        ready = out.handler_done;
        // The same key always resolves to the same server-side location, regardless
        // of invocation mode or which mailbox the message used.
        let entry = offsets.entry(key).or_insert(out.result);
        assert_eq!(*entry, out.result, "key {key} moved between messages");
    }
    assert_eq!(offsets.len(), 10);
}

#[test]
fn latency_ordering_matches_the_papers_qualitative_claims() {
    use two_chains_suite::bench::harness::{PingPong, TestbedOptions};

    // Injected messages are slower than Local for tiny payloads but converge for
    // large payloads (Fig. 7). The ordering is a property of per-message code
    // handling, so it is pinned under the interpretive execution policy; the
    // default resolved policy deliberately erases the warm per-message code
    // cost (checked below).
    let mut pp = PingPong::new(
        TestbedOptions {
            warmup: 3,
            ..Default::default()
        }
        .interpreted(),
    );
    let small_local = pp
        .run(BuiltinJam::IndirectPut, InvocationMode::Local, 1, 12)
        .median_us();
    let small_inj = pp
        .run(BuiltinJam::IndirectPut, InvocationMode::Injected, 1, 12)
        .median_us();
    let big_local = pp
        .run(BuiltinJam::IndirectPut, InvocationMode::Local, 8192, 8)
        .median_us();
    let big_inj = pp
        .run(BuiltinJam::IndirectPut, InvocationMode::Injected, 8192, 8)
        .median_us();
    let small_gap = (small_inj - small_local) / small_local;
    let big_gap = (big_inj - big_local) / big_local;
    assert!(
        small_gap > 0.10,
        "small payloads pay for shipping code: {small_gap}"
    );
    assert!(
        big_gap < small_gap / 2.0,
        "the overhead must fade for large payloads: {big_gap}"
    );

    // Resolved execution (the default) collapses that warm small-payload gap:
    // once the resolved image is cached, dispatch never re-reads the shipped
    // code section.
    let mut resolved = PingPong::new(TestbedOptions {
        warmup: 3,
        ..Default::default()
    });
    let res_local = resolved
        .run(BuiltinJam::IndirectPut, InvocationMode::Local, 1, 12)
        .median_us();
    let res_inj = resolved
        .run(BuiltinJam::IndirectPut, InvocationMode::Injected, 1, 12)
        .median_us();
    let resolved_gap = (res_inj - res_local) / res_local;
    assert!(
        resolved_gap < small_gap / 2.0,
        "resolved execution must shrink the warm injected-vs-local gap: \
         interpreted {small_gap}, resolved {resolved_gap}"
    );

    // Stashing reduces injected-message latency (Fig. 9).
    let mut nostash = PingPong::new(
        TestbedOptions {
            warmup: 3,
            ..Default::default()
        }
        .nonstash()
        .interpreted(),
    );
    let stash_lat = pp
        .run(BuiltinJam::IndirectPut, InvocationMode::Injected, 16, 12)
        .median_us();
    let nostash_lat = nostash
        .run(BuiltinJam::IndirectPut, InvocationMode::Injected, 16, 12)
        .median_us();
    assert!(nostash_lat > stash_lat, "stashing must reduce latency");
}

#[test]
fn wfe_configuration_is_cycle_efficient_end_to_end() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.wait_mode = WaitMode::Wfe;
    let (mut rx_wfe, mut tx_wfe) = testbed(cfg);
    let (mut rx_poll, mut tx_poll) = testbed(RuntimeConfig::paper_default());
    let id = rx_poll.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    for (rx, tx) in [(&mut rx_poll, &mut tx_poll), (&mut rx_wfe, &mut tx_wfe)] {
        let target = rx.mailbox_target(0, 0).unwrap();
        let mut ready = SimTime::ZERO;
        for i in 0..10u32 {
            let frame = tx
                .pack(id, InvocationMode::Injected, ssum_args(16), ints(16))
                .unwrap();
            // Space sends out so the receiver actually waits between messages.
            let start = SimTime::from_us(5 * (i as u64 + 1));
            let sent = tx.send(start, &frame, &target).unwrap();
            let out = rx
                .receive(0, 0, Some(frame.wire_size()), sent.delivered(), ready)
                .unwrap();
            ready = out.handler_done;
        }
    }
    let poll_cycles = rx_poll.stats().cycles.total();
    let wfe_cycles = rx_wfe.stats().cycles.total();
    assert!(
        poll_cycles > wfe_cycles * 2,
        "polling ({poll_cycles}) should burn far more cycles than WFE ({wfe_cycles})"
    );
}

#[test]
fn without_execution_configuration_is_put_like() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().without_execution());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let frame = tx
        .pack(id, InvocationMode::Local, ssum_args(64), ints(64))
        .unwrap();
    let sent = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let out = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            sent.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    // No execution happened, and the receiver-side cost is well under a microsecond.
    assert!(out.exec.is_none());
    assert!(
        out.handler_time < SimTime::from_ns(300),
        "got {}",
        out.handler_time
    );
}
