//! Property-based tests over the core data structures and invariants, spanning the
//! member crates.

use proptest::prelude::*;

use two_chains_suite::jamvm::{
    decode_program, encode_program, verify, AddressSpace, Assembler, ExternTable, GotImage, Instr,
    Reg, Segment, SegmentKind, Vm, VmConfig,
};
use two_chains_suite::linker::{JamObject, SymbolRef};
use two_chains_suite::memsim::cycles::{WaitMode, WaitModel};
use two_chains_suite::memsim::{AccessKind, CacheHierarchy, MemoryBus, SimTime, TestbedConfig};
use twochains::frame::Frame;

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..16, any::<u64>()).prop_map(|(r, imm)| Instr::LoadImm { dst: Reg(r), imm }),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Instr::Mov {
            dst: Reg(d),
            src: Reg(s)
        }),
        (0u8..16, 0u8..16, 0u8..16).prop_map(|(d, a, b)| Instr::Alu {
            op: two_chains_suite::jamvm::isa::AluOp::Add,
            dst: Reg(d),
            a: Reg(a),
            b: Reg(b)
        }),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Instr::Hash {
            dst: Reg(d),
            src: Reg(s)
        }),
        (0u16..4, 0u8..4).prop_map(|(slot, nargs)| Instr::CallExtern { slot, nargs }),
        Just(Instr::Nop),
        Just(Instr::Ret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any instruction sequence survives encode -> decode unchanged.
    #[test]
    fn bytecode_roundtrips(program in prop::collection::vec(arb_instr(), 0..200)) {
        let bytes = encode_program(&program);
        let decoded = decode_program(&bytes).expect("decodes");
        prop_assert_eq!(decoded, program);
    }

    /// Frames survive encode -> decode for arbitrary section contents.
    #[test]
    fn frames_roundtrip(
        sn in any::<u32>(),
        elem in any::<u32>(),
        got in prop::collection::vec(any::<u8>(), 0..64),
        code in prop::collection::vec(any::<u8>(), 0..512),
        args in prop::collection::vec(any::<u8>(), 0..64),
        usr in prop::collection::vec(any::<u8>(), 0..1024),
        injected in any::<bool>(),
    ) {
        let frame = if injected {
            Frame::injected(sn, elem, got, code, args, usr)
        } else {
            Frame::local(sn, elem, args, usr)
        };
        let decoded = Frame::decode(&frame.encode()).expect("frame decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Batch containers survive the wire for arbitrary inner-frame counts,
    /// shapes and destination slots: the parsed view yields the identical
    /// `(slot, frame bytes)` sequence, advertises the first inner frame's
    /// sequence number, and is recognised by the container sniffer while a
    /// plain frame is not.
    #[test]
    fn batch_containers_roundtrip(
        base_sn in any::<u32>(),
        specs in prop::collection::vec(
            (any::<u16>(), prop::collection::vec(any::<u8>(), 0..128), any::<bool>()),
            1..12,
        ),
    ) {
        use twochains::frame::{is_batch, BatchView, FrameBatch, BATCH_OVERHEAD, BATCH_PREFIX_SIZE};

        let frames: Vec<(u16, Vec<u8>)> = specs
            .iter()
            .enumerate()
            .map(|(i, (slot, usr, injected))| {
                let sn = base_sn.wrapping_add(i as u32);
                let frame = if *injected {
                    Frame::injected(sn, 7, vec![1; 8], vec![2; 16], vec![3; 20], usr.clone())
                } else {
                    Frame::local(sn, 7, vec![3; 20], usr.clone())
                };
                (*slot, frame.encode())
            })
            .collect();

        let mut batch = FrameBatch::new();
        for (slot, wire) in &frames {
            batch.push(*slot, wire).expect("push");
        }
        prop_assert_eq!(batch.len(), frames.len());
        let expected_size = BATCH_OVERHEAD
            + frames.iter().map(|(_, w)| BATCH_PREFIX_SIZE + w.len()).sum::<usize>();
        prop_assert_eq!(batch.wire_size(), expected_size);

        let mut wire = Vec::new();
        batch.finish_into(&mut wire).expect("finish");
        prop_assert_eq!(wire.len(), expected_size);
        prop_assert!(is_batch(&wire), "container not recognised by the sniffer");
        prop_assert!(!is_batch(&frames[0].1), "plain frame misread as a container");

        let view = BatchView::parse(&wire).expect("container parses");
        prop_assert_eq!(view.sn, base_sn);
        prop_assert_eq!(view.wire_len, wire.len());
        prop_assert_eq!(view.frames().len(), frames.len());
        for ((slot, inner), (want_slot, want_wire)) in view.frames().iter().zip(&frames) {
            prop_assert_eq!(slot, want_slot);
            prop_assert_eq!(*inner, &want_wire[..]);
        }
    }

    /// A container cut off mid-frame is rejected, and when the cut lands past
    /// the victim's header the error names that inner frame's sequence number
    /// — the forensic signal the sender's retransmit machinery keys on.
    #[test]
    fn truncated_batch_containers_name_the_victim_frame(
        base_sn in 0u32..1_000_000,
        sizes in prop::collection::vec(0usize..96, 2..8),
        victim_pick in any::<u32>(),
        cut_pick in any::<u32>(),
    ) {
        use twochains::frame::{
            BatchView, FrameBatch, BATCH_PREFIX_SIZE, FRAME_HEADER_SIZE,
        };

        let frames: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &usr)| {
                Frame::local(base_sn + i as u32, 9, vec![4; 12], vec![5; usr]).encode()
            })
            .collect();
        let mut batch = FrameBatch::new();
        for (i, wire) in frames.iter().enumerate() {
            batch.push(i as u16, wire).expect("push");
        }
        let mut wire = Vec::new();
        batch.finish_into(&mut wire).expect("finish");

        // Cut inside the victim frame, past its 8-byte (magic + sn) prologue
        // so the parser can still echo who the cut landed on.
        let victim = victim_pick as usize % frames.len();
        let start = FRAME_HEADER_SIZE
            + frames[..victim]
                .iter()
                .map(|w| BATCH_PREFIX_SIZE + w.len())
                .sum::<usize>()
            + BATCH_PREFIX_SIZE;
        let span = frames[victim].len() - 8;
        let cut = start + 8 + cut_pick as usize % span;
        let err = BatchView::parse(&wire[..cut]).expect_err("truncated container must not parse");
        let msg = err.to_string();
        let victim_sn = base_sn + victim as u32;
        prop_assert!(
            msg.contains(&format!("sn {victim_sn}")),
            "error must echo the victim's sn {victim_sn}: {msg}"
        );
    }

    /// Chain descriptors survive the wire for every stage count the header can
    /// express — including the zero-stage descriptor, which must stay distinct
    /// from the unchained frame — with stage IDs and arg maps intact.
    #[test]
    fn chain_descriptors_roundtrip(
        sn in any::<u32>(),
        elem in any::<u32>(),
        args in prop::collection::vec(any::<u8>(), 0..32),
        usr in prop::collection::vec(any::<u8>(), 0..256),
        stages in prop::collection::vec(
            (any::<u32>(), any::<bool>()),
            0..twochains::CHAIN_MAX_STAGES + 1,
        ),
        chained in any::<bool>(),
    ) {
        use twochains::{ChainArgMap, ChainDescriptor, ChainStage};

        let mut frame = Frame::local(sn, elem, args, usr);
        if chained {
            let mut desc = ChainDescriptor::new();
            for &(stage_elem, keep) in &stages {
                let map = if keep { ChainArgMap::KeepArgs } else { ChainArgMap::Result };
                desc.push(ChainStage { elem_id: stage_elem, map }).expect("within CHAIN_MAX_STAGES");
            }
            frame = frame.with_chain(desc);
        }
        let wire = frame.encode();
        let decoded = Frame::decode(&wire).expect("chained frame decodes");
        prop_assert_eq!(&decoded, &frame);
        // None vs Some-with-zero-stages must not collapse into each other.
        prop_assert_eq!(decoded.chain.is_some(), chained);
        if let Some(desc) = decoded.chain {
            prop_assert_eq!(desc.len(), stages.len());
            for (got, &(stage_elem, keep)) in desc.stages().iter().zip(&stages) {
                prop_assert_eq!(got.elem_id, stage_elem);
                let map = if keep { ChainArgMap::KeepArgs } else { ChainArgMap::Result };
                prop_assert_eq!(got.map, map);
            }
        }
    }

    /// Verified straight-line programs always terminate and never fault the host.
    #[test]
    fn verified_programs_execute_safely(program in prop::collection::vec(arb_instr(), 1..100)) {
        let mut program = program;
        program.push(Instr::Ret);
        // Give it a GOT large enough for any slot the generator can produce, with
        // every slot bound to a trivial extern.
        let mut externs = ExternTable::new();
        let idx = externs.register("id", std::sync::Arc::new(|_ctx, args| Ok(args.first().copied().unwrap_or(0))));
        let mut got = GotImage::with_slots(4);
        for s in 0..4 {
            got.set(s, two_chains_suite::jamvm::ExternRef::Resolved(idx));
        }
        prop_assert!(verify(&program, got.len()).is_ok());
        let mut space = AddressSpace::new();
        let mut bus = two_chains_suite::memsim::hierarchy::FlatMemory::free();
        let cfg = VmConfig { fuel: 100_000, ..VmConfig::default() };
        let result = Vm::execute(&program, &got, &externs, &mut space, &mut bus, &cfg);
        prop_assert!(result.is_ok(), "execution failed: {:?}", result);
    }

    /// Jam objects survive serialization for arbitrary rodata / args sizes.
    #[test]
    fn jam_objects_roundtrip(
        rodata in prop::collection::vec(any::<u8>(), 0..256),
        args_size in 0usize..256,
        pad in 0usize..64,
    ) {
        let mut a = Assembler::new();
        a.load_imm(Reg(0), 7).call_extern(0, 1);
        for _ in 0..pad {
            a.nop();
        }
        a.ret();
        let obj = JamObject::from_program(
            "jam_prop",
            &a.finish().unwrap(),
            rodata,
            vec![SymbolRef::func("f")],
            args_size,
        )
        .unwrap();
        let back = JamObject::from_bytes(&obj.to_bytes()).unwrap();
        prop_assert_eq!(back, obj);
    }

    /// The Server-Side Sum jam computes the same sum the host computes, for any
    /// payload, via the full runtime path.
    #[test]
    fn server_side_sum_matches_host_sum(values in prop::collection::vec(any::<u32>(), 1..64)) {
        use two_chains_suite::fabric::SimFabric;
        use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
        use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};

        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut rx = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
        rx.install_package(benchmark_package().unwrap()).unwrap();
        let mut tx = TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        tx.set_remote_got(id, &rx.export_got(id).unwrap());
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(values.len() as u32), payload)
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let sent = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(0, 0, Some(frame.wire_size()), sent.delivered(), SimTime::ZERO)
            .unwrap();
        let expected: u64 = values.iter().map(|&v| v as u64).sum::<u64>();
        // The jam accumulates in 64-bit registers from zero-extended 32-bit loads.
        prop_assert_eq!(out.result, expected);
    }

    /// Cache hierarchy invariant: a second access to the same address is never more
    /// expensive than the first, whatever the address pattern.
    #[test]
    fn caches_never_make_repeat_accesses_slower(addrs in prop::collection::vec(0u64..1_000_000, 1..64)) {
        let mut h = CacheHierarchy::new(TestbedConfig::tiny_for_tests());
        for &addr in &addrs {
            let first = h.access(0, addr, 8, AccessKind::Read);
            let second = h.access(0, addr, 8, AccessKind::Read);
            prop_assert!(second <= first, "addr {addr}: {second} > {first}");
        }
    }

    /// Wait-model invariant: WFE never burns more cycles than polling, and its
    /// latency penalty is bounded by the wake-up cost.
    #[test]
    fn wfe_dominates_polling_in_cycles(wait_ns in 0u64..1_000_000) {
        let m = WaitModel::cluster2021();
        let wait = SimTime::from_ns(wait_ns);
        let poll = m.wait(WaitMode::Polling, wait);
        let wfe = m.wait(WaitMode::Wfe, wait);
        prop_assert!(wfe.cycles <= poll.cycles + m.wfe_overhead_cycles + m.wfe_recheck_cycles);
        prop_assert!(wfe.elapsed <= poll.elapsed + m.wfe_wake_latency + m.poll_interval);
    }

    /// Sharded burst draining is observationally equivalent to sequential
    /// single-slot receives: over a shuffled interleave of K senders, the burst
    /// host delivers the same multiset of results and the same receiver counters
    /// as a host draining the identical send stream one `receive` at a time.
    #[test]
    fn sharded_burst_drain_matches_sequential_receive(
        num_shards in 1usize..5,
        k in 1usize..5,
        per_sender in 1usize..6,
        seed in any::<u64>(),
    ) {
        use two_chains_suite::fabric::SimFabric;
        use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
        use twochains::{spec, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};

        let banks = 4usize;
        let build = |shards: usize| -> (TwoChainsHost, Vec<TwoChainsSender>) {
            let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
            let mut rx = TwoChainsHost::new(
                &fabric,
                b,
                RuntimeConfig::paper_default().with_shards(shards),
            )
            .unwrap();
            rx.install_package(benchmark_package().unwrap()).unwrap();
            let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
            let got = rx.export_got(id).unwrap();
            let senders = (0..k)
                .map(|_| {
                    let mut tx = TwoChainsSender::new(
                        fabric.endpoint(a, b).unwrap(),
                        benchmark_package().unwrap(),
                    );
                    tx.set_remote_got(id, &got);
                    tx
                })
                .collect();
            (rx, senders)
        };

        // A shuffled interleave of the K senders' messages (Fisher–Yates over a
        // SplitMix stream seeded by the generated seed).
        let mut order: Vec<(usize, usize)> = (0..k)
            .flat_map(|s| (0..per_sender).map(move |m| (s, m)))
            .collect();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        // Drive the identical send stream into both hosts: message (s, m) uses a
        // payload derived from its identity, so its result identifies it.
        let send_all = |rx: &TwoChainsHost, txs: &mut Vec<TwoChainsSender>| {
            let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
            let mut sends = Vec::new();
            for (i, &(s, m)) in order.iter().enumerate() {
                let n_ints = 1 + (s + m) % 4;
                let val = (s * 8 + m + 1) as u32;
                let usr: Vec<u8> = (0..n_ints as u32).flat_map(|_| val.to_le_bytes()).collect();
                let (bank, slot) = (i % banks, i / banks);
                let target = rx.mailbox_target(bank, slot).unwrap();
                let msg = spec(id)
                    .mode(InvocationMode::Injected)
                    .args(ssum_args(n_ints as u32))
                    .usr(usr);
                let sent = txs[s].send_spec(SimTime::ZERO, &msg, &target).unwrap();
                sends.push((bank, slot, sent.wire_bytes, sent.delivered()));
            }
            sends
        };

        // Host A: sequential single-slot receives in send order.
        let (mut rx_seq, mut txs_seq) = build(1);
        let sends = send_all(&rx_seq, &mut txs_seq);
        let mut seq_results = Vec::new();
        let mut ready = SimTime::ZERO;
        for &(bank, slot, len, delivered) in &sends {
            let out = rx_seq.receive(bank, slot, Some(len), delivered, ready).unwrap();
            ready = out.handler_done;
            seq_results.push(out.result);
        }

        // Host B: sharded burst draining, one burst per shard until dry.
        let (mut rx_burst, mut txs_burst) = build(num_shards);
        let sends_b = send_all(&rx_burst, &mut txs_burst);
        let horizon = sends_b
            .iter()
            .map(|&(_, _, _, d)| d)
            .fold(SimTime::ZERO, SimTime::max);
        let mut burst_results = Vec::new();
        for shard in 0..num_shards {
            let mut now = horizon;
            loop {
                let out = rx_burst.receive_burst(shard, usize::MAX, now).unwrap();
                prop_assert!(out.rejected.is_empty(), "no frame may be rejected: {:?}", out.rejected);
                if out.frames.is_empty() {
                    break;
                }
                now = out.drained_at;
                burst_results.extend(out.frames.iter().map(|f| f.outcome.result));
            }
        }

        // Same frames delivered (multiset of results)...
        let mut a = seq_results.clone();
        let mut b = burst_results.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "result multisets diverge");
        // ...and the same receiver counters.
        let (ss, bs) = (rx_seq.stats(), rx_burst.stats());
        prop_assert_eq!(ss.messages_received, bs.messages_received);
        prop_assert_eq!(ss.executions, bs.executions);
        prop_assert_eq!(ss.injected_executions, bs.injected_executions);
        prop_assert_eq!(ss.injected_code_cache_misses, bs.injected_code_cache_misses);
        prop_assert_eq!(ss.injected_code_cache_hits, bs.injected_code_cache_hits);
        prop_assert_eq!(ss.got_cache_misses, bs.got_cache_misses);
        prop_assert_eq!(ss.got_cache_hits, bs.got_cache_hits);
        prop_assert_eq!(rx_seq.injected_cache_len(), rx_burst.injected_cache_len());
    }

    /// Address-space isolation: writes through one segment never alter another.
    #[test]
    fn segments_are_isolated(data in prop::collection::vec(any::<u8>(), 1..128), offset in 0usize..64) {
        let mut space = AddressSpace::new();
        space.map(Segment::new("a", 0x1000, vec![0xAA; 256], true, SegmentKind::Heap)).unwrap();
        space.map(Segment::new("b", 0x2000, vec![0xBB; 256], true, SegmentKind::Heap)).unwrap();
        let len = data.len().min(256 - offset);
        space.write(0x1000 + offset as u64, &data[..len]).unwrap();
        let b = space.segment("b").unwrap();
        prop_assert!(b.data.iter().all(|&x| x == 0xBB));
    }
}
