//! Sender-fleet pipeline equivalence: the overlapped fill/drain pipeline
//! (`drive_pipeline`: one sender thread per lane, one drain thread per shard,
//! per-slot credits returned as one-sided puts into the lanes' sender-side
//! credit tables) must be observationally equal to the
//! sequential fill-then-drain baseline — same per-message results, same
//! injection-cache statistics, same merged order-independent runtime counters —
//! over arbitrary payload interleaves.
//!
//! What is *not* compared: virtual-time counters (`wait_time`, `exec_time`,
//! cycles) and per-core cache statistics. The pipelined drain polls its banks
//! repeatedly (each scan charges one poll) and drains slots in whatever order
//! the fill/drain race exposes them, so simulated time and private-cache
//! hit patterns legitimately differ between the schedules; everything that
//! describes *what* was executed must not.
//!
//! Run in release, as CI does — the pipeline races 4 sender threads against 4
//! drain threads over the lock-split receive path, and ordering bugs bite with
//! optimizations on.

use proptest::prelude::*;

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{
    drive_pipeline, InvocationMode, RuntimeConfig, SenderFleet, SlotCtx, TwoChainsHost,
};

const SHARDS: usize = 4;
const ROUNDS: usize = 3;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

fn build() -> (TwoChainsHost, SenderFleet) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, config()).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    (host, fleet)
}

/// SplitMix64 — the same deterministic stream generator the stress test uses,
/// here keying each (bank, slot, round) payload off the proptest seed so every
/// case exercises a different message interleave on both hosts identically.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn payload_for(seed: u64, ctx: SlotCtx) -> (Vec<u8>, Vec<u8>) {
    // The key depends on (seed, bank, slot) but NOT the round: the Indirect
    // Put table assigns each new key an offset from a bump cursor, so a key
    // first probed in a different order would legitimately land elsewhere.
    // Keeping the key set fixed per slot means the sequential prime performs
    // every allocation in a deterministic order and the measured rounds are
    // pure lookups — order-independent, as an equivalence oracle must be.
    let h = mix(seed ^ (ctx.bank as u64) << 24 ^ (ctx.slot as u64) << 12);
    let key = h % 48;
    // The payload itself can (and does) vary per round: it is memcpy'd to the
    // key's location and does not feed back into the result.
    let r = mix(h ^ ctx.round.wrapping_mul(7919));
    let usr: Vec<u8> = (0..16u8)
        .map(|b| b.wrapping_mul((r % 250) as u8 + 1))
        .collect();
    (indirect_put_args(key, 4, 4), usr)
}

/// Prime both schedules identically (warm injection caches, sender templates
/// and the simulated hierarchy), then zero every counter.
fn prime(host: &mut TwoChainsHost, fleet: &mut SenderFleet, seed: u64) {
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    fleet
        .fill_all(elem, InvocationMode::Injected, u64::MAX, &|ctx| {
            payload_for(seed, ctx)
        })
        .unwrap();
    for shard in 0..SHARDS {
        let out = host
            .receive_burst(shard, usize::MAX, SimTime::ZERO)
            .unwrap();
        assert!(out.rejected.is_empty());
    }
    fleet.harvest_completions();
    host.reset_stats();
    fleet.reset_stats();
}

/// The sequential baseline: fill every slot (lane after lane on this thread),
/// then one burst per shard, `ROUNDS` times.
fn run_sequential(seed: u64) -> (Vec<u64>, TwoChainsHost, SenderFleet) {
    let (mut host, mut fleet) = build();
    prime(&mut host, &mut fleet, seed);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let total_slots = host.config().total_mailboxes();
    let mut results = Vec::new();
    for round in 0..ROUNDS {
        let horizons = fleet
            .fill_all(elem, InvocationMode::Injected, round as u64, &|ctx| {
                payload_for(seed, ctx)
            })
            .unwrap();
        let mut drained = 0usize;
        for (shard, &start) in horizons.iter().enumerate() {
            let out = host.receive_burst(shard, usize::MAX, start).unwrap();
            assert!(out.rejected.is_empty());
            drained += out.len();
            results.extend(out.frames.iter().map(|f| f.outcome.result));
        }
        assert_eq!(drained, total_slots);
        fleet.harvest_completions();
    }
    (results, host, fleet)
}

/// The pipelined schedule: fill and drain overlapped, per-slot credit flow.
fn run_pipelined(seed: u64) -> (Vec<u64>, TwoChainsHost, SenderFleet) {
    let (mut host, mut fleet) = build();
    prime(&mut host, &mut fleet, seed);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let out = drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        ROUNDS,
        &|ctx| payload_for(seed, ctx),
    )
    .unwrap();
    assert_eq!(out.drained, ROUNDS * host.config().total_mailboxes());
    assert_eq!(out.rejected, 0);
    (out.results.iter().map(|f| f.result).collect(), host, fleet)
}

fn assert_observationally_equal(seed: u64) {
    let (mut seq_results, seq_host, seq_fleet) = run_sequential(seed);
    let (mut pipe_results, pipe_host, pipe_fleet) = run_pipelined(seed);

    // Same messages executed with the same outcomes (drain order within a
    // shard depends on the fill/drain race: compare as multisets).
    seq_results.sort_unstable();
    pipe_results.sort_unstable();
    assert_eq!(seq_results, pipe_results);

    // Receiver-side order-independent counters match exactly.
    let (a, b) = (seq_host.stats(), pipe_host.stats());
    assert_eq!(a.messages_received, b.messages_received);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.injected_executions, b.injected_executions);
    assert_eq!(a.local_executions, b.local_executions);
    assert_eq!(a.injected_code_cache_hits, b.injected_code_cache_hits);
    assert_eq!(a.injected_code_cache_misses, b.injected_code_cache_misses);
    assert_eq!(a.got_cache_hits, b.got_cache_hits);
    assert_eq!(a.got_cache_misses, b.got_cache_misses);
    assert_eq!(a.frames_rejected, 0);
    assert_eq!(b.frames_rejected, 0);
    assert_eq!(a.poisoned_quarantined, b.poisoned_quarantined);
    // Flow control is itself order-independent fabric traffic now: both
    // schedules retire the same frames, so both return the same one-sided
    // credit puts — one per received message.
    assert_eq!(a.credits_returned, b.credits_returned);
    assert_eq!(a.credit_put_bytes, b.credit_put_bytes);
    assert_eq!(a.credits_returned, a.messages_received);
    // How those tokens were batched onto the wire IS schedule-dependent — the
    // pipelined drain scans its banks far more often, so it flushes smaller
    // spans more frequently — but the conservation law is not: every token is
    // published by exactly one flushed span on either schedule, so flush
    // traffic bounds hold for both.
    let per_bank = seq_host.config().mailboxes_per_bank as u64;
    for s in [&a, &b] {
        assert!(s.credit_flushes >= 1);
        assert!(s.credit_flushes <= s.credits_returned);
        assert!(s.credit_flush_bytes >= s.credits_returned);
        assert!(s.credit_flush_max_span >= 1 && s.credit_flush_max_span <= per_bank);
    }

    // Sender-side counters: same messages, same bytes, same per-lane template
    // caching; the roomy window means neither schedule ever stalled.
    let (sa, sb) = (seq_fleet.stats(), pipe_fleet.stats());
    assert_eq!(sa.messages_sent, sb.messages_sent);
    assert_eq!(sa.bytes_sent, sb.bytes_sent);
    assert_eq!(sa.template_hits, sb.template_hits);
    assert_eq!(sa.template_misses, sb.template_misses);
    assert_eq!(sa.sends_backpressured, 0);
    assert_eq!(sb.sends_backpressured, 0);
    // The sequential schedule never waits on the credit table; the pipelined
    // lanes may stall (a wall-clock race), which is exactly why stall counts
    // are not part of the equivalence oracle.
    assert_eq!(sa.credit_stall_events, 0);
    // Row-span puts can land several fresh tokens in one wakeup scan; each
    // extra harvest saves a spin but never funds an extra send, so coalesced
    // refills are bounded by the sends that consumed them.
    assert!(sa.credit_refills_coalesced <= sa.messages_sent);
    assert!(sb.credit_refills_coalesced <= sb.messages_sent);
    for stream in 0..SHARDS {
        assert_eq!(
            seq_fleet.lane(stream).unwrap().stats().messages_sent,
            pipe_fleet.lane(stream).unwrap().stats().messages_sent,
            "stream {stream} sent the same count under both schedules"
        );
    }
}

#[test]
fn pipelined_fleet_matches_sequential_baseline() {
    assert_observationally_equal(0x2C2C_2C2C);
}

proptest! {
    // Each case runs 8 threads over the full pipeline twice; keep the case
    // count modest so the property stays a fast tier-1 test.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The equivalence holds over arbitrary payload interleaves, not just the
    /// fixed seed above.
    #[test]
    fn pipelined_fleet_matches_sequential_baseline_for_any_seed(seed in any::<u64>()) {
        assert_observationally_equal(seed);
    }
}
