//! Receiver-side chain equivalence over the sender fleet: a frame carrying the
//! whole lookup → filter → aggregate graph pipeline must be observationally
//! equal to the same stages shipped as separate sequential messages — same
//! per-item results, same aggregate-oracle state (`graph.accum` counts every
//! contribution, order-independently), same execution counts — while retiring
//! N-fold fewer frames. The suite drives whole fleets (every mailbox, multiset
//! oracle, like `fleet_pipeline`) and arbitrary stage sequences (proptest:
//! any 1..=8-long walk over the three graph elements), pinning that chaining
//! changes message count and nothing else.

use proptest::prelude::*;

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, graph_args, BuiltinJam};
use twochains::{spec, ElementId, RuntimeConfig, SenderFleet, TwoChainsHost};

const SHARDS: usize = 2;
const CHAIN_STAGES: usize = 3;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

fn build() -> (TwoChainsHost, SenderFleet) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, config()).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    (host, fleet)
}

fn graph_elems(host: &TwoChainsHost) -> [ElementId; 3] {
    [
        host.builtin_id(BuiltinJam::GraphLookup).unwrap(),
        host.builtin_id(BuiltinJam::GraphFilter).unwrap(),
        host.builtin_id(BuiltinJam::GraphAggregate).unwrap(),
    ]
}

/// The per-item key: deterministic in (bank, slot) so both schedules process
/// the identical operand multiset.
fn key_for(bank: usize, slot: usize) -> u64 {
    ((bank as u64) << 16 | slot as u64).wrapping_mul(0x9E37_79B9) | 1
}

/// Every mailbox carries the full 3-stage chain in one frame; drained with
/// shard bursts. Returns (results multiset, aggregate oracle bytes, host).
fn run_chained_fleet() -> (Vec<u64>, Vec<u8>, TwoChainsHost) {
    let (mut host, mut fleet) = build();
    let [lookup, filter, agg] = graph_elems(&host);
    let cfg = host.config().clone();
    for (stream, mut lane) in fleet.handles().into_iter().enumerate() {
        for bank in (0..cfg.banks).filter(|b| b % SHARDS == stream) {
            for slot in 0..cfg.mailboxes_per_bank {
                let msg = spec(lookup)
                    .local()
                    .args(graph_args(key_for(bank, slot)))
                    .then(filter)
                    .then(agg);
                lane.send_spec(bank, slot, &msg).unwrap();
            }
        }
    }
    let mut results = Vec::new();
    for shard in 0..SHARDS {
        let out = host
            .receive_burst(shard, usize::MAX, SimTime::from_ns(1_000_000))
            .unwrap();
        assert!(out.rejected.is_empty(), "rejected: {:?}", out.rejected);
        results.extend(out.frames.iter().map(|f| f.outcome.result));
    }
    fleet.harvest_completions();
    let accum = host.read_data("graph.accum", 0, 16).unwrap();
    (results, accum, host)
}

/// The same operands through the same stages, one message per stage: each
/// item's intermediate result is carried back out and re-sent as the next
/// stage's ARGS. Single-slot receives keep the result feedback exact.
fn run_sequential_fleet() -> (Vec<u64>, Vec<u8>, TwoChainsHost) {
    let (mut host, mut fleet) = build();
    let elems = graph_elems(&host);
    let cfg = host.config().clone();
    let mut results = Vec::new();
    for (stream, mut lane) in fleet.handles().into_iter().enumerate() {
        for bank in (0..cfg.banks).filter(|b| b % SHARDS == stream) {
            for slot in 0..cfg.mailboxes_per_bank {
                let mut carried = key_for(bank, slot);
                for elem in elems {
                    let msg = spec(elem).local().args(graph_args(carried));
                    let sent = lane.send_spec(bank, slot, &msg).unwrap();
                    let out = host
                        .receive(
                            bank,
                            slot,
                            Some(sent.wire_bytes),
                            sent.delivered(),
                            SimTime::ZERO,
                        )
                        .unwrap();
                    carried = out.result;
                }
                results.push(carried);
            }
        }
    }
    fleet.harvest_completions();
    let accum = host.read_data("graph.accum", 0, 16).unwrap();
    (results, accum, host)
}

#[test]
fn chained_fleet_matches_sequential_sends() {
    let (mut chained, chain_accum, chain_host) = run_chained_fleet();
    let (mut sequential, seq_accum, seq_host) = run_sequential_fleet();
    let total = chain_host.config().total_mailboxes();

    // Same per-item pipeline results (drain order differs: compare multisets).
    chained.sort_unstable();
    sequential.sort_unstable();
    assert_eq!(chained, sequential, "result multisets diverge");

    // Same aggregate-oracle state: every contribution landed exactly once
    // under both schedules.
    assert_eq!(chain_accum, seq_accum, "graph.accum oracles diverge");

    // Same work, N-fold fewer frames.
    let (c, s) = (chain_host.stats(), seq_host.stats());
    assert_eq!(c.executions, (CHAIN_STAGES * total) as u64);
    assert_eq!(s.executions, (CHAIN_STAGES * total) as u64);
    assert_eq!(c.local_executions, s.local_executions);
    assert_eq!(c.messages_received, total as u64, "one frame per item");
    assert_eq!(
        s.messages_received,
        (CHAIN_STAGES * total) as u64,
        "one frame per stage"
    );
    assert_eq!(c.chain_frames, total as u64);
    assert_eq!(c.chain_stages_executed, ((CHAIN_STAGES - 1) * total) as u64);
    assert_eq!(s.chain_frames, 0);
    assert_eq!(s.chain_stages_executed, 0);
    assert_eq!(c.frames_rejected, 0);
    assert_eq!(s.frames_rejected, 0);

    // Flow control follows frames, not stages: every retired frame returned
    // exactly one credit under both schedules.
    assert_eq!(c.credits_returned, c.messages_received);
    assert_eq!(s.credits_returned, s.messages_received);
}

/// One item through one mailbox: primary = first stage, chain = the rest.
fn run_stage_walk_chained(stages: &[ElementId], key: u64) -> (u64, Vec<u8>) {
    let (mut host, mut fleet) = build();
    let mut handles = fleet.handles();
    let mut msg = spec(stages[0]).local().args(graph_args(key));
    for &stage in &stages[1..] {
        msg = msg.then(stage);
    }
    let sent = handles[0].send_spec(0, 0, &msg).unwrap();
    let out = host
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap();
    let accum = host.read_data("graph.accum", 0, 16).unwrap();
    assert_eq!(host.stats().executions, stages.len() as u64);
    assert_eq!(
        host.stats().chain_stages_executed,
        (stages.len() - 1) as u64
    );
    (out.result, accum)
}

fn run_stage_walk_sequential(stages: &[ElementId], key: u64) -> (u64, Vec<u8>) {
    let (mut host, mut fleet) = build();
    let mut handles = fleet.handles();
    let mut carried = key;
    for &elem in stages {
        let msg = spec(elem).local().args(graph_args(carried));
        let sent = handles[0].send_spec(0, 0, &msg).unwrap();
        let out = host
            .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
            .unwrap();
        carried = out.result;
    }
    let accum = host.read_data("graph.accum", 0, 16).unwrap();
    assert_eq!(host.stats().messages_received, stages.len() as u64);
    assert_eq!(host.stats().chain_frames, 0);
    (carried, accum)
}

proptest! {
    // Each case spins up two full fleets; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For ANY walk over the graph elements — up to the wire format's 8-stage
    /// ceiling, repeats allowed — the chained frame's result and aggregate
    /// side effects equal the stage-by-stage sequential schedule's.
    #[test]
    fn any_stage_walk_is_result_equal_to_sequential_sends(
        walk in prop::collection::vec(0usize..3, 1..9),
        key in any::<u64>(),
    ) {
        let (host, _fleet) = build();
        let elems = graph_elems(&host);
        let stages: Vec<ElementId> = walk.iter().map(|&i| elems[i]).collect();
        let (chained_result, chained_accum) = run_stage_walk_chained(&stages, key);
        let (seq_result, seq_accum) = run_stage_walk_sequential(&stages, key);
        prop_assert_eq!(chained_result, seq_result, "stage walk {:?}", walk);
        prop_assert_eq!(chained_accum, seq_accum, "aggregate oracle diverged");
    }
}
