//! Chaos fabric survival: the fleet pipeline must be observationally equal to
//! its own lossless run when the sender→receiver link drops, duplicates and
//! reorders puts under a seeded [`FaultPlan`].
//!
//! The oracle is the same one `fleet_pipeline.rs` uses between schedules, here
//! applied between fault schedules: same per-message results (as multisets —
//! recovery legitimately perturbs drain order), same order-independent runtime
//! counters, zero rejected frames. On top of that the reliability layer has to
//! account for itself:
//!
//! * every dropped put was compensated by at least one retransmit
//!   (`frames_retransmitted >= dropped` — each drop consumes one delivery
//!   attempt, and attempts beyond `messages_sent` are retransmits by
//!   definition);
//! * `executions` matches the lossless run exactly, so no duplicate delivery
//!   or stale retransmit was ever executed twice (idempotent replay
//!   suppression);
//! * a pristine link pays nothing: with no plan installed the fault counters
//!   don't exist and `frames_retransmitted`, `replays_suppressed` and
//!   `nacks_posted` are all exactly zero.
//!
//! The workload is Server-Side Sum, deliberately not Indirect Put: its result
//! is the sum of the payload — a pure function of `(seed, bank, slot, round)` —
//! whereas Indirect Put returns a bump-allocated address that depends on
//! first-probe order, which fault recovery legitimately reshuffles.
//!
//! Both runs prime *through the pipeline* (not the phased fill/drain, which
//! has no retransmit machinery and would wedge on a dropped prime frame), then
//! reset statistics, so the measured rounds hit warm caches identically on
//! both sides regardless of recovery order.

use proptest::prelude::*;

use two_chains_suite::fabric::{FaultPlan, SimFabric};
use two_chains_suite::memsim::TestbedConfig;
use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
use twochains::{
    drive_pipeline, InvocationMode, RuntimeConfig, SenderFleet, SlotCtx, TwoChainsHost,
};

const SHARDS: usize = 4;
const ROUNDS: usize = 3;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

/// SplitMix64, keying each (bank, slot, round) payload off the proptest seed.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn payload_for(seed: u64, ctx: SlotCtx) -> (Vec<u8>, Vec<u8>) {
    let r = mix(seed
        ^ ((ctx.bank as u64) << 24)
        ^ ((ctx.slot as u64) << 12)
        ^ ctx.round.wrapping_mul(7919));
    let usr: Vec<u8> = (0..16u8)
        .map(|b| b.wrapping_mul((r % 250) as u8 + 1))
        .collect();
    (ssum_args(4), usr)
}

struct Run {
    results: Vec<u64>,
    host: TwoChainsHost,
    fleet: SenderFleet,
    /// Puts lost on the faulted link during the measured rounds only (prime
    /// recovery is its own business and is excluded by a pre-measure snapshot).
    dropped: u64,
}

fn run(seed: u64, plan: Option<FaultPlan>) -> Run {
    run_with(seed, plan, false)
}

fn run_with(seed: u64, plan: Option<FaultPlan>, per_frame: bool) -> Run {
    let cfg = if per_frame {
        config().with_per_frame_aggregation()
    } else {
        config()
    };
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    // The plan must be installed before `connect` creates the lane endpoints:
    // each endpoint captures the link's fault hook at creation time.
    if let Some(plan) = plan {
        fabric.install_fault_plan(a, b, plan).unwrap();
    }
    let mut fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let total = host.config().total_mailboxes();

    // Prime through the armed pipeline so dropped prime frames are recovered.
    let out = drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        1,
        &|ctx| payload_for(seed ^ 0xA5A5_5A5A_A5A5_5A5A, ctx),
    )
    .unwrap();
    assert_eq!(out.drained, total);
    assert_eq!(out.rejected, 0);
    host.reset_stats();
    fleet.reset_stats();
    let primed = fabric.fault_counters(a, b).map_or(0, |s| s.dropped);

    let out = drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        ROUNDS,
        &|ctx| payload_for(seed, ctx),
    )
    .unwrap();
    assert_eq!(out.drained, ROUNDS * total);
    assert_eq!(out.rejected, 0);
    let dropped = fabric.fault_counters(a, b).map_or(0, |s| s.dropped) - primed;
    Run {
        results: out.results.iter().map(|f| f.result).collect(),
        host,
        fleet,
        dropped,
    }
}

fn assert_survives(seed: u64, plan: FaultPlan) {
    let base = run(seed, None);
    let chaos = run(seed, Some(plan));

    // The pristine link pays literally nothing for the reliability layer.
    assert_eq!(base.dropped, 0);
    assert_eq!(base.fleet.stats().frames_retransmitted, 0);
    assert_eq!(base.host.stats().replays_suppressed, 0);
    assert_eq!(base.host.stats().nacks_posted, 0);

    // Same messages executed with the same outcomes, as multisets.
    let mut br = base.results;
    let mut cr = chaos.results;
    br.sort_unstable();
    cr.sort_unstable();
    assert_eq!(br, cr);

    // Receiver-side order-independent counters match exactly. Not compared:
    // `credit_put_bytes` (idempotent replay re-credits and NACK posts ride the
    // credit accounting) and all virtual-time/cycle counters.
    let (a, b) = (base.host.stats(), chaos.host.stats());
    assert_eq!(a.messages_received, b.messages_received);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.injected_executions, b.injected_executions);
    assert_eq!(a.local_executions, b.local_executions);
    assert_eq!(a.injected_code_cache_hits, b.injected_code_cache_hits);
    assert_eq!(a.injected_code_cache_misses, b.injected_code_cache_misses);
    assert_eq!(a.got_cache_hits, b.got_cache_hits);
    assert_eq!(a.got_cache_misses, b.got_cache_misses);
    assert_eq!(a.frames_rejected, 0);
    assert_eq!(b.frames_rejected, 0);
    assert_eq!(a.poisoned_quarantined, b.poisoned_quarantined);
    // One real credit per received message on both schedules: suppressed
    // replays re-publish an existing token, they never mint a new credit.
    assert_eq!(a.credits_returned, a.messages_received);
    assert_eq!(b.credits_returned, b.messages_received);

    // Sender-side: retransmits are not sends, so the steady counters agree.
    let (sa, sb) = (base.fleet.stats(), chaos.fleet.stats());
    assert_eq!(sa.messages_sent, sb.messages_sent);
    assert_eq!(sa.bytes_sent, sb.bytes_sent);
    assert_eq!(sa.template_hits, sb.template_hits);
    assert_eq!(sa.template_misses, sb.template_misses);
    assert_eq!(sa.sends_backpressured, 0);
    assert_eq!(sb.sends_backpressured, 0);
    for stream in 0..SHARDS {
        assert_eq!(
            base.fleet.lane(stream).unwrap().stats().messages_sent,
            chaos.fleet.lane(stream).unwrap().stats().messages_sent,
            "stream {stream} sent the same count under both fault schedules"
        );
    }

    // Recovery accounting: every lost put consumed one delivery attempt, and
    // every attempt beyond `messages_sent` is a retransmit — so a completed
    // run must have retransmitted at least as many frames as the link dropped.
    assert!(
        sb.frames_retransmitted >= chaos.dropped,
        "retransmits ({}) must cover drops ({})",
        sb.frames_retransmitted,
        chaos.dropped
    );
}

#[test]
fn pipeline_survives_a_dropping_link() {
    assert_survives(0xC4A0_5C4A, FaultPlan::drop_only(0.05, 0xD20B));
}

/// Whole-container fault schedules: under the default adaptive aggregation a
/// multi-frame container is one put, so the faulted link drops, duplicates
/// and reorders *entire batches* — and the run must still be observationally
/// equal to the per-frame lossless schedule: same result multiset, same
/// execution count (no inner frame ever double-executes, however many times
/// its container was delivered), retransmits covering every dropped put.
#[test]
fn batched_pipeline_under_faults_matches_the_per_frame_lossless_run() {
    let seed = 0xBA7C_4ED5;
    let base = run_with(seed, None, true);
    let chaos = run_with(seed, Some(FaultPlan::mixed(0.12, 0x0C0F_FEE5)), false);

    // The baseline really ran the old wire behaviour, the chaos run really
    // aggregated — whole containers were at stake on every fault.
    assert_eq!(base.fleet.stats().batch_puts, 0);
    let cs = chaos.fleet.stats();
    assert!(
        cs.batch_puts > 0,
        "adaptive pipeline never built a container"
    );
    assert!(
        cs.batched_frames > cs.batch_puts,
        "containers must be multi-frame"
    );

    // Observational equality across both the policy and the fault schedule.
    let mut br = base.results;
    let mut cr = chaos.results;
    br.sort_unstable();
    cr.sort_unstable();
    assert_eq!(br, cr, "result multisets diverge");
    let (a, b) = (base.host.stats(), chaos.host.stats());
    assert_eq!(a.messages_received, b.messages_received);
    assert_eq!(
        a.executions, b.executions,
        "a replayed container double-executed"
    );
    assert_eq!(a.injected_executions, b.injected_executions);
    assert_eq!(a.frames_rejected, 0);
    assert_eq!(b.frames_rejected, 0);
    // One real credit per received message on both sides: a replayed or
    // retransmitted container re-publishes tokens, it never mints extras.
    assert_eq!(a.credits_returned, a.messages_received);
    assert_eq!(b.credits_returned, b.messages_received);
    // The payload ledger matches across policies too: `bytes_sent` counts
    // inner-frame bytes only, the container envelope is accounting-invisible.
    let bs = base.fleet.stats();
    assert_eq!(bs.messages_sent, cs.messages_sent);
    assert_eq!(bs.bytes_sent, cs.bytes_sent);

    // Recovery accounting: a dropped container consumed one delivery attempt
    // covering all its inner frames; the retransmit counter tracks frames, so
    // covering every dropped put takes at least one frame each.
    assert!(
        cs.frames_retransmitted >= chaos.dropped,
        "retransmits ({}) must cover dropped puts ({})",
        cs.frames_retransmitted,
        chaos.dropped
    );
}

#[test]
fn pipeline_survives_a_dropping_duplicating_reordering_link() {
    assert_survives(0x2C2C_2C2C, FaultPlan::mixed(0.12, 0xFA_B71C));
}

proptest! {
    // Each case runs the full pipeline four times (two primed runs); keep the
    // count modest so the property stays a fast tier-1 test.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Survival holds over arbitrary payload interleaves and fault seeds, for
    /// both the pure-loss and the mixed drop/duplicate/reorder schedules.
    #[test]
    fn pipeline_survives_arbitrary_fault_seeds(seed in any::<u64>()) {
        assert_survives(seed, FaultPlan::drop_only(0.04, mix(seed)));
        assert_survives(seed ^ 0xFEED, FaultPlan::mixed(0.09, mix(seed ^ 0xFEED)));
    }
}
