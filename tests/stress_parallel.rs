//! Multi-threaded drain stress test: 4 shards drained from 4 OS threads over a
//! shuffled K-sender interleave must be observationally identical to the same
//! host drained sequentially — delivered frames, per-core cache statistics and
//! merged runtime counters all match.
//!
//! This is the correctness half of the lock-split work (per-core cache
//! hierarchies + shard-local address spaces): the threaded path takes no
//! global lock, so any missed invalidation, stripe race or per-shard state
//! leak shows up here as a counter or result divergence. Run it in release, as
//! CI does (`cargo test --workspace --release`) — optimizations are where
//! ordering bugs bite.

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{spec, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};

const SHARDS: usize = 4;
const SENDERS: usize = 3;
const ROUNDS: usize = 3;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg
}

fn build() -> (TwoChainsHost, Vec<TwoChainsSender>) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, config()).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let id = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let got = host.export_got(id).unwrap();
    let senders = (0..SENDERS)
        .map(|_| {
            let mut tx =
                TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
            tx.set_remote_got(id, &got);
            tx
        })
        .collect();
    (host, senders)
}

/// Deterministic Fisher–Yates over a SplitMix64 stream: the shuffled K-sender
/// interleave both hosts replay identically.
fn shuffled_slots(seed: u64, banks: usize, per_bank: usize) -> Vec<(usize, usize, usize)> {
    let mut order: Vec<(usize, usize, usize)> = (0..banks)
        .flat_map(|b| (0..per_bank).map(move |s| (b, s, (b * per_bank + s) % SENDERS)))
        .collect();
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Fill every mailbox through the shuffled interleave; returns the latest
/// delivery horizon.
fn fill(host: &TwoChainsHost, senders: &mut [TwoChainsSender], round: usize) -> SimTime {
    let id = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let banks = host.config().banks;
    let per_bank = host.config().mailboxes_per_bank;
    let mut horizon = SimTime::ZERO;
    let mut clock = SimTime::ZERO;
    for (bank, slot, sender) in shuffled_slots(
        (round as u64).wrapping_mul(7919).wrapping_add(13),
        banks,
        per_bank,
    ) {
        let key = ((bank * per_bank + slot) as u64).wrapping_mul(31) % 48;
        let usr: Vec<u8> = (0..16u8).map(|b| b.wrapping_mul(key as u8 + 1)).collect();
        let target = host.mailbox_target(bank, slot).unwrap();
        let msg = spec(id)
            .mode(InvocationMode::Injected)
            .args(indirect_put_args(key, 4, 4))
            .usr(usr);
        let sent = senders[sender].send_spec(clock, &msg, &target).unwrap();
        clock = sent.sender_free();
        horizon = horizon.max(sent.delivered());
    }
    horizon
}

#[test]
fn threaded_drain_matches_sequential_baseline() {
    let (mut seq_host, mut seq_senders) = build();
    let (mut par_host, mut par_senders) = build();
    let total_slots = config().total_mailboxes();

    // Prime both hosts identically (and sequentially) so the shared injection
    // caches are warm before the measured rounds: with a cold cache, two
    // parallel shards can race on the first decode of the same key and record
    // one extra miss — a legal outcome, but one that would make the exact
    // counter comparison below timing-dependent.
    for host_senders in [
        (&mut seq_host, &mut seq_senders),
        (&mut par_host, &mut par_senders),
    ] {
        let (host, senders) = host_senders;
        let horizon = fill(host, senders, usize::MAX / 2);
        for shard in 0..SHARDS {
            let out = host.receive_burst(shard, usize::MAX, horizon).unwrap();
            assert!(out.rejected.is_empty());
        }
        host.reset_stats();
    }

    let mut seq_results: Vec<u64> = Vec::new();
    let mut par_results: Vec<u64> = Vec::new();

    for round in 0..ROUNDS {
        // Identical fills on both hosts.
        let seq_horizon = fill(&seq_host, &mut seq_senders, round);
        let par_horizon = fill(&par_host, &mut par_senders, round);
        assert_eq!(seq_horizon, par_horizon, "send streams must be identical");

        // Baseline: one burst per shard, sequentially on this thread.
        let mut seq_round = 0usize;
        for shard in 0..SHARDS {
            let out = seq_host
                .receive_burst(shard, usize::MAX, seq_horizon)
                .unwrap();
            assert!(out.rejected.is_empty());
            seq_round += out.len();
            seq_results.extend(out.frames.iter().map(|f| f.outcome.result));
        }
        assert_eq!(seq_round, total_slots);

        // Same drain, one OS thread per shard, no global lock anywhere.
        let drained: Vec<Vec<u64>> = std::thread::scope(|s| {
            par_host
                .shard_drains()
                .into_iter()
                .map(|mut drain| {
                    s.spawn(move || {
                        let out = drain.receive_burst(usize::MAX, par_horizon).unwrap();
                        assert!(out.rejected.is_empty());
                        out.frames.iter().map(|f| f.outcome.result).collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(drained.iter().map(Vec::len).sum::<usize>(), total_slots);
        par_results.extend(drained.into_iter().flatten());
    }

    // Same frames delivered, same per-message results (bank ownership is
    // deterministic, so even the per-shard grouping matches; compare as
    // multisets to stay independent of intra-round ordering).
    seq_results.sort_unstable();
    par_results.sort_unstable();
    assert_eq!(seq_results, par_results);

    // Merged runtime counters match exactly.
    let (a, b) = (seq_host.stats(), par_host.stats());
    assert_eq!(a.messages_received, b.messages_received);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.injected_executions, b.injected_executions);
    assert_eq!(a.injected_code_cache_hits, b.injected_code_cache_hits);
    assert_eq!(a.injected_code_cache_misses, b.injected_code_cache_misses);
    assert_eq!(a.got_cache_hits, b.got_cache_hits);
    assert_eq!(a.got_cache_misses, b.got_cache_misses);
    assert_eq!(a.frames_rejected, 0);
    assert_eq!(a.poisoned_quarantined, b.poisoned_quarantined);
    assert_eq!(
        a.exec_time, b.exec_time,
        "modelled time is thread-invariant"
    );

    // Per-shard runtime counters and per-core private-cache statistics match
    // shard for shard: each core's L1/L2 sees exactly its own access stream
    // (plus the same DMA invalidations), however the threads interleave.
    for shard in 0..SHARDS {
        let sa = seq_host.shard_stats(shard).unwrap();
        let sb = par_host.shard_stats(shard).unwrap();
        assert_eq!(
            sa.messages_received, sb.messages_received,
            "shard {shard} delivered counts"
        );
        assert_eq!(
            seq_host.shard_cache_stats(shard).unwrap(),
            par_host.shard_cache_stats(shard).unwrap(),
            "shard {shard} per-core cache stats"
        );
    }

    // And the global simulated-cache picture agrees (no accesses were lost or
    // double-charged by the striped shared levels).
    let ha = seq_host.hierarchy_stats();
    let hb = par_host.hierarchy_stats();
    assert_eq!(ha.l1_hits, hb.l1_hits);
    assert_eq!(ha.l2_hits, hb.l2_hits);
    assert_eq!(
        ha.l3_hits + ha.llc_hits + ha.dram_accesses,
        hb.l3_hits + hb.llc_hits + hb.dram_accesses,
        "every private miss lands at exactly one shared level"
    );
}
