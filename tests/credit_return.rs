//! One-sided credit returns (§VI-A2) as observable fabric traffic.
//!
//! Flow control must ride the fabric: every retired frame — drained,
//! dispatch-rejected or *quarantined* — mints exactly one credit token into
//! the paired sender lane's credit table, coalesced into per-row span puts by
//! the flush policy. The poisoned-slot cases matter most:
//! a slot wedged by a malicious put is reclaimed by the credit-returning
//! (pipelined) drain, and its credit still comes back, so the owning lane can
//! refill it instead of waiting forever on a token that never changes.
//!
//! Run in release, as CI does — the quarantine test drains with one OS thread
//! per shard over the lock-split receive path.

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::frame::FRAME_HEADER_SIZE;
use twochains::{drive_pipeline, Frame, InvocationMode, RuntimeConfig, SenderFleet, TwoChainsHost};

const SHARDS: usize = 2;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS)
        .with_shard_local_space();
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

fn build() -> (SimFabric, TwoChainsHost, SenderFleet) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, config()).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    assert!(
        host.credit_path_installed(),
        "streams == shards must wire the one-sided credit path"
    );
    (fabric, host, fleet)
}

/// Poison mailbox (`bank`, `slot`): a one-sided put of a header whose magic is
/// set but whose declared frame length is out of range — the one-put
/// denial-of-service the quarantine path exists for. Exactly what a malicious
/// or buggy peer with the mailbox descriptor can do.
fn poison(fabric: &SimFabric, host: &TwoChainsHost, bank: usize, slot: usize) {
    let (fabric_src, fabric_dst) = (
        two_chains_suite::fabric::HostId(0),
        two_chains_suite::fabric::HostId(1),
    );
    assert_eq!(host.host_id(), fabric_dst);
    let mut raw = fabric.endpoint(fabric_src, fabric_dst).unwrap();
    let target = host.mailbox_target(bank, slot).unwrap();
    let mut bytes = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
    bytes[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
    raw.put(
        SimTime::ZERO,
        &bytes[..FRAME_HEADER_SIZE],
        &target.region,
        target.offset,
    )
    .unwrap();
}

#[test]
fn quarantined_slot_still_returns_its_credit_under_the_parallel_drain() {
    let (fabric, mut host, mut fleet) = build();
    poison(&fabric, &host, 0, 0);

    // The pipelined drain path: one OS thread per shard, each quarantining
    // and crediting as it scans (drive_pipeline's drain threads run exactly
    // this burst engine).
    std::thread::scope(|s| {
        for mut drain in host.shard_drains() {
            let shard = drain.shard_id();
            s.spawn(move || {
                let out = drain.receive_burst(usize::MAX, SimTime::ZERO).unwrap();
                assert_eq!(out.frames.len(), 0, "nothing well-formed was sent");
                assert_eq!(
                    out.rejected.len(),
                    usize::from(shard == 0),
                    "shard 0 owns bank 0 and must quarantine the poisoned slot"
                );
            });
        }
    });
    let stats = host.stats();
    assert_eq!(stats.poisoned_quarantined, 1);
    // The quarantine produced a credit token over the fabric: one op, one
    // wire byte, charged in virtual time on the drain core.
    assert_eq!(stats.credits_returned, 1);
    assert_eq!(stats.credit_put_bytes, 1);
    assert!(stats.credit_put_time > SimTime::ZERO);
    // A lone retirement coalesces with nothing: the scan-end flush posted it
    // as one single-byte span.
    assert_eq!(stats.credit_flushes, 1);
    assert_eq!(stats.credit_flush_bytes, 1);
    assert_eq!(stats.credit_flush_max_span, 1);
    // ... and it landed in the owning lane's sender-side table, so the lane
    // can reuse the slot instead of wedging.
    assert!(fleet.lane(0).unwrap().credit_pending(0, 0).unwrap());
    assert!(
        !fleet.lane(0).unwrap().credit_pending(0, 1).unwrap(),
        "sibling slots earned nothing"
    );

    // The lane indeed cannot wedge: a full pipelined run over the same banks
    // completes, refilling the once-poisoned slot along the way.
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let total = host.config().total_mailboxes();
    let out = drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        2,
        &|ctx| {
            let key = (ctx.bank * 16 + ctx.slot) as u64 % 48;
            (indirect_put_args(key, 4, 4), vec![7u8; 16])
        },
    )
    .unwrap();
    assert_eq!(out.drained, 2 * total);
    assert_eq!(out.rejected, 0);
}

#[test]
fn pipeline_returns_one_credit_per_frame_over_the_fabric() {
    let (_fabric, mut host, mut fleet) = build();
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let rounds = 3;
    let total = host.config().total_mailboxes();
    let out = drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        rounds,
        &|ctx| {
            let key = (ctx.bank * 16 + ctx.slot) as u64 % 48;
            (indirect_put_args(key, 4, 4), vec![3u8; 16])
        },
    )
    .unwrap();
    assert_eq!(out.drained, rounds * total);
    let stats = host.stats();
    assert_eq!(stats.credits_returned as usize, rounds * total);
    assert_eq!(stats.credit_put_bytes, stats.credits_returned);
    assert!(
        stats.credit_put_time > SimTime::ZERO,
        "flow control must be charged in virtual time"
    );
    // Every token was published by exactly one flush: no more flushes than
    // tokens (the degenerate bound — one single-byte span each), and the
    // spans covered at least one wire byte per token. Span widths cannot
    // exceed a bank row.
    assert!(stats.credit_flushes >= 1);
    assert!(stats.credit_flushes <= stats.credits_returned);
    assert!(stats.credit_flush_bytes >= stats.credits_returned);
    let per_bank = host.config().mailboxes_per_bank as u64;
    assert!(stats.credit_flush_max_span >= 1 && stats.credit_flush_max_span <= per_bank);
}
