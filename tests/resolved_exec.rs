//! Differential tests pinning resolved execution to the interpreter.
//!
//! [`Vm::execute_resolved`] over `resolve(program, got)` must be
//! observationally equal to [`Vm::execute`] over `(program, got)` for *any*
//! program — verified or garbage — in results, faults, instruction and
//! extern-call accounting, and memory effects, with charged virtual time
//! matching exactly in compute and data-memory and bounded by the documented
//! block-batching fetch tolerance (see `jamvm::resolved` module docs). The
//! generator deliberately includes unverifiable programs: out-of-range branch
//! targets, calls through unresolved and data-bound GOT slots, and loads and
//! stores through garbage addresses, because the lazy-error contract is the
//! part a lowering bug would break first.

use std::sync::Arc;

use proptest::prelude::*;

use two_chains_suite::jamvm::{
    isa::{AluOp, Cond, Width},
    resolve, AddressSpace, ExecError, ExecStats, ExternRef, ExternTable, GotImage, Instr, Reg,
    Segment, SegmentKind, Vm, VmConfig,
};
use two_chains_suite::memsim::hierarchy::FlatMemory;
use two_chains_suite::memsim::SimTime;

const HEAP_BASE: u64 = 0x5000;
const HEAP_SIZE: usize = 256;

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B1), Just(Width::B4), Just(Width::B8)]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Zero),
        Just(Cond::NotZero),
        Just(Cond::Less),
        Just(Cond::GreaterEq),
    ]
}

/// Every ISA shape the resolver lowers, biased toward the fusible pairs
/// (load+ALU, ALU+branch, mov+mov) and including inputs the verifier would
/// reject: branch targets past the end of the program and GOT slots that are
/// unresolved (slot 2) or bound to data (slot 1).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..16, any::<u64>()).prop_map(|(r, imm)| Instr::LoadImm { dst: Reg(r), imm }),
        // Small immediates keep heap-relative address arithmetic in range
        // often enough that some stores land instead of all faulting.
        (0u8..16, 0u64..128).prop_map(|(r, imm)| Instr::LoadImm { dst: Reg(r), imm }),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Instr::Mov {
            dst: Reg(d),
            src: Reg(s)
        }),
        (arb_alu_op(), 0u8..16, 0u8..16, 0u8..16).prop_map(|(op, d, a, b)| Instr::Alu {
            op,
            dst: Reg(d),
            a: Reg(a),
            b: Reg(b)
        }),
        (arb_alu_op(), 0u8..16, 0u8..16, 0u64..64).prop_map(|(op, d, s, imm)| Instr::AluImm {
            op,
            dst: Reg(d),
            src: Reg(s),
            imm
        }),
        (arb_width(), 0u8..16, 0u8..4, 0u32..64).prop_map(|(width, d, a, offset)| Instr::Load {
            width,
            dst: Reg(d),
            addr: Reg(a),
            offset
        }),
        (arb_width(), 0u8..16, 0u8..4, 0u32..64).prop_map(|(width, s, a, offset)| Instr::Store {
            width,
            src: Reg(s),
            addr: Reg(a),
            offset
        }),
        (0u8..4, 0u8..4, 0u8..16).prop_map(|(d, s, l)| Instr::Memcpy {
            dst: Reg(d),
            src: Reg(s),
            len: Reg(l)
        }),
        (0u32..140).prop_map(|target| Instr::Jump { target }),
        (arb_cond(), 0u8..16, 0u8..16, 0u32..140).prop_map(|(cond, a, b, target)| {
            Instr::Branch {
                cond,
                a: Reg(a),
                b: Reg(b),
                target,
            }
        }),
        (0u16..4, 0u8..4).prop_map(|(slot, nargs)| Instr::CallExtern { slot, nargs }),
        (0u8..16, 0u8..16).prop_map(|(d, s)| Instr::Hash {
            dst: Reg(d),
            src: Reg(s)
        }),
        Just(Instr::Nop),
        Just(Instr::Ret),
    ]
}

/// One extern table + GOT covering every `ExternRef` shape the resolver
/// handles: slot 0 and 3 are callable, slot 1 names data, slot 2 is a hole.
fn fixture() -> (ExternTable, GotImage) {
    let mut externs = ExternTable::new();
    let mix = externs.register(
        "mix",
        Arc::new(|_ctx, args: &[u64]| {
            Ok(args
                .iter()
                .fold(0x9E37_79B9u64, |acc, &a| acc.rotate_left(7) ^ a))
        }),
    );
    let mut got = GotImage::with_slots(4);
    got.set(0, ExternRef::Resolved(mix));
    got.set(1, ExternRef::Data(HEAP_BASE));
    got.set(2, ExternRef::Unresolved);
    got.set(3, ExternRef::Resolved(mix));
    (externs, got)
}

fn space() -> AddressSpace {
    let mut space = AddressSpace::new();
    space
        .map(Segment::new(
            "heap",
            HEAP_BASE,
            (0..HEAP_SIZE as u32).map(|i| i as u8).collect(),
            true,
            SegmentKind::Heap,
        ))
        .unwrap();
    space
}

fn config() -> VmConfig {
    VmConfig {
        // Nonzero so fetch charging is live on both paths — the timing
        // sandwich below is vacuous without it.
        code_base: 0x4000_0000,
        fuel: 20_000,
        // Registers enter pointing into the heap segment (the jam entry
        // convention: ARGS base, USR base, USR length) so generated loads
        // and stores land in mapped memory often enough to diff real writes.
        entry_regs: [HEAP_BASE, HEAP_BASE + 64, 64],
        ..VmConfig::default()
    }
}

/// A uniform-cost bus: the block-batching fetch bound in the module docs is
/// stated for exactly this bus shape (every access costs the same, so fewer
/// fetch accesses can only mean less fetch time).
fn uniform_bus() -> FlatMemory {
    FlatMemory {
        per_access: SimTime::from_ns(1),
        accesses: 0,
    }
}

type Observed = Result<ExecStats, ExecError>;

fn run_interpreted(program: &[Instr]) -> (Observed, AddressSpace) {
    let (externs, got) = fixture();
    let mut space = space();
    let mut bus = uniform_bus();
    let out = Vm::execute(program, &got, &externs, &mut space, &mut bus, &config());
    (out, space)
}

fn run_resolved(program: &[Instr]) -> (Observed, AddressSpace) {
    let (externs, got) = fixture();
    let resolved = resolve(program, &got);
    let mut space = space();
    let mut bus = uniform_bus();
    let out = Vm::execute_resolved(&resolved, &externs, &mut space, &mut bus, &config());
    (out, space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential: arbitrary (including unverifiable) programs
    /// observe no difference between interpretation and resolved execution.
    #[test]
    fn resolved_execution_is_observationally_equal_to_the_interpreter(
        program in prop::collection::vec(arb_instr(), 1..120),
    ) {
        let (interp, interp_space) = run_interpreted(&program);
        let (resolved, resolved_space) = run_resolved(&program);

        match (&interp, &resolved) {
            (Ok(i), Ok(r)) => {
                prop_assert_eq!(i.result, r.result, "result registers diverge");
                prop_assert_eq!(i.instructions, r.instructions, "retired counts diverge");
                prop_assert_eq!(i.extern_calls, r.extern_calls, "extern calls diverge");
                // Fused ops retire two instructions each; the fusion count can
                // never exceed half the retirement count.
                prop_assert!(r.superinstructions * 2 <= r.instructions);
                // Timing: compute and data-memory charges are defined to be
                // identical; fetch obeys the block-batching sandwich on a
                // uniform-cost bus (module docs, "Timing contract").
                prop_assert_eq!(i.compute_time, r.compute_time, "compute time diverges");
                prop_assert_eq!(i.memory_time, r.memory_time, "data-memory time diverges");
                prop_assert!(
                    r.fetch_time <= i.fetch_time,
                    "batched fetch charged more than per-instruction fetch: {} > {}",
                    r.fetch_time,
                    i.fetch_time
                );
                prop_assert!(
                    r.total_time() >= i.compute_time + i.memory_time,
                    "resolved total fell below the compute+memory floor"
                );
            }
            // Rejection behaviour: same error, including lazy GOT errors and
            // out-of-bounds pcs reported in original-pc terms.
            (Err(ei), Err(er)) => prop_assert_eq!(ei, er, "errors diverge"),
            _ => prop_assert!(
                false,
                "one path failed where the other succeeded: interp={:?} resolved={:?}",
                interp,
                resolved
            ),
        }

        // Memory effects: whatever the program stored (or memcpy'd, or wrote
        // through an extern) left the identical heap image behind — on the
        // error paths too, since a fault mid-program leaves earlier stores.
        let interp_heap = &interp_space.segment("heap").unwrap().data;
        let resolved_heap = &resolved_space.segment("heap").unwrap().data;
        prop_assert_eq!(interp_heap, resolved_heap, "heap effects diverge");
    }

    /// Lowering is deterministic and re-execution of one image is stable:
    /// the same program resolved twice yields the same ops, and running the
    /// image twice from fresh state observes the same outcome.
    #[test]
    fn resolution_is_deterministic(program in prop::collection::vec(arb_instr(), 1..60)) {
        let (_, got) = fixture();
        let a = resolve(&program, &got);
        let b = resolve(&program, &got);
        prop_assert_eq!(&a, &b);
        let (first, _) = run_resolved(&program);
        let (second, _) = run_resolved(&program);
        prop_assert_eq!(first, second);
    }
}

/// A hand-built program hitting every fusion shape, pinned so the generator
/// can never silently stop covering superinstructions: mov+mov (argument
/// shuffle), load+ALU, and the `sub; jnz` loop back-edge (AluImm+Branch).
#[test]
fn fused_superinstructions_retire_both_halves() {
    let program = vec![
        // mov+mov pair -> MovMov.
        Instr::Mov {
            dst: Reg(3),
            src: Reg(0),
        },
        Instr::Mov {
            dst: Reg(4),
            src: Reg(2),
        },
        // load feeding an ALU op -> LoadAlu.
        Instr::Load {
            width: Width::B8,
            dst: Reg(5),
            addr: Reg(3),
            offset: 0,
        },
        Instr::Alu {
            op: AluOp::Add,
            dst: Reg(6),
            a: Reg(5),
            b: Reg(4),
        },
        // countdown loop: AluImm sub feeding a NotZero branch -> AluImmBranch.
        Instr::AluImm {
            op: AluOp::Sub,
            dst: Reg(4),
            src: Reg(4),
            imm: 8,
        },
        Instr::Branch {
            cond: Cond::NotZero,
            a: Reg(4),
            b: Reg(0),
            target: 2,
        },
        Instr::Mov {
            dst: Reg(0),
            src: Reg(6),
        },
        Instr::Ret,
    ];
    let (interp, _) = run_interpreted(&program);
    let (resolved, _) = run_resolved(&program);
    let i = interp.expect("interpreter runs the loop");
    let r = resolved.expect("resolved executor runs the loop");
    assert_eq!(i.result, r.result);
    assert_eq!(i.instructions, r.instructions);
    assert!(
        r.superinstructions > 0,
        "the fusion corpus must actually fuse"
    );
    assert_eq!(i.superinstructions, 0, "the interpreter never fuses");
}

/// Full-runtime parity: the same message stream through two hosts — one pinned
/// to `Interpret`, one on the default `Resolved` policy — produces identical
/// results and execution counters, while only the resolved host reports
/// resolved-cache traffic.
#[test]
fn runtime_policies_agree_end_to_end() {
    use two_chains_suite::fabric::SimFabric;
    use two_chains_suite::memsim::TestbedConfig;
    use twochains::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
    use twochains::{InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};

    let build = |cfg: RuntimeConfig| {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut rx = TwoChainsHost::new(&fabric, b, cfg).unwrap();
        rx.install_package(benchmark_package().unwrap()).unwrap();
        let mut tx =
            TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
        for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
            let id = rx.builtin_id(jam).unwrap();
            tx.set_remote_got(id, &rx.export_got(id).unwrap());
        }
        (rx, tx)
    };
    let drive = |cfg: RuntimeConfig| {
        let (mut rx, mut tx) = build(cfg);
        let ssum = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let iput = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let mut results = Vec::new();
        let mut ready = SimTime::ZERO;
        let mut clock = SimTime::ZERO;
        for i in 1..=24u32 {
            let payload: Vec<u8> = (1..=i).flat_map(|v| v.to_le_bytes()).collect();
            let (elem, args) = if i % 3 == 0 {
                (iput, indirect_put_args(i as u64 % 5, 8, 4))
            } else {
                (ssum, ssum_args(i))
            };
            let frame = tx
                .pack(elem, InvocationMode::Injected, args, payload)
                .unwrap();
            let sent = tx.send(clock, &frame, &target).unwrap();
            clock = sent.sender_free();
            let out = rx
                .receive(0, 0, Some(frame.wire_size()), sent.delivered(), ready)
                .unwrap();
            ready = out.handler_done;
            results.push(out.result);
        }
        let stats = rx.stats().clone();
        (results, stats)
    };

    let (interp_results, interp_stats) =
        drive(RuntimeConfig::paper_default().with_interpreted_execution());
    let (resolved_results, resolved_stats) = drive(RuntimeConfig::paper_default());

    assert_eq!(
        interp_results, resolved_results,
        "per-message results diverge"
    );
    assert_eq!(interp_stats.executions, resolved_stats.executions);
    assert_eq!(
        interp_stats.injected_executions,
        resolved_stats.injected_executions
    );
    assert_eq!(
        interp_stats.messages_received,
        resolved_stats.messages_received
    );
    // Policy-specific counters: the interpreting host never touches the
    // resolved cache; the resolved host misses once per element then hits.
    assert_eq!(interp_stats.resolved_cache_hits, 0);
    assert_eq!(interp_stats.resolved_cache_misses, 0);
    assert_eq!(interp_stats.superinstructions_executed, 0);
    assert_eq!(resolved_stats.resolved_cache_misses, 2);
    assert_eq!(
        resolved_stats.resolved_cache_hits,
        resolved_stats.injected_executions - 2
    );
    assert!(resolved_stats.superinstructions_executed > 0);
}
