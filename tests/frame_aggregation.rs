//! Pins the two sender-side aggregation policies against each other.
//!
//! `AggregationPolicy::PerFrame` is the compatibility contract: one tracked
//! put per frame, each mailbox holding exactly the bytes a pre-aggregation
//! `TwoChainsSender` would have put there — pinned byte-for-byte below.
//! `AggregationPolicy::Adaptive` (the default) packs same-bank frames into
//! multi-frame containers behind one put; it must be observationally
//! equivalent — same result multiset, same receiver execution counters, same
//! payload byte accounting — with only the shape counters (`batch_puts`,
//! `batches_received`) telling the two wire behaviours apart.

use two_chains_suite::fabric::SimFabric;
use two_chains_suite::memsim::{SimTime, TestbedConfig};
use twochains::builtin::{benchmark_package, ssum_args, BuiltinJam};
use twochains::{spec, InvocationMode, RuntimeConfig, SenderFleet, TwoChainsHost, TwoChainsSender};

const SHARDS: usize = 2;

fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(SHARDS)
        .with_sender_streams(SHARDS);
    cfg.banks = 4;
    cfg.mailboxes_per_bank = 4;
    cfg.frame_capacity = 4096;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

fn build(cfg: RuntimeConfig) -> (SimFabric, TwoChainsHost, SenderFleet) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).expect("host");
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet = SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap())
        .expect("fleet");
    (fabric, host, fleet)
}

/// The per-slot payload: distinct per (bank, slot) so every result identifies
/// its message.
fn payload(bank: usize, slot: usize) -> (Vec<u8>, Vec<u8>) {
    let val = (bank * 16 + slot + 1) as u32;
    let usr: Vec<u8> = (0..4u32).flat_map(|_| val.to_le_bytes()).collect();
    (ssum_args(4), usr)
}

/// Drain every shard until dry; returns (results, rejected count).
fn drain_all(host: &mut TwoChainsHost) -> (Vec<u64>, usize) {
    let mut results = Vec::new();
    let mut rejected = 0usize;
    for shard in 0..host.num_shards() {
        let out = host
            .receive_burst(shard, usize::MAX, SimTime::ZERO)
            .expect("drain");
        results.extend(out.frames.iter().map(|f| f.outcome.result));
        rejected += out.rejected.len();
    }
    (results, rejected)
}

/// The compatibility pin: under `PerFrame`, every mailbox the fleet fills
/// holds *byte-identical* wire contents to a pre-aggregation
/// `TwoChainsSender` replaying the same per-lane send order — headers,
/// sequence numbers, payload and trailer, compared over the full mailbox
/// capacity so stray container bytes cannot hide past the frame length.
#[test]
fn per_frame_wire_bytes_match_the_standalone_sender() {
    let (fabric_a, host_a, mut fleet) = build(config().with_per_frame_aggregation());
    let elem = host_a.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    fleet
        .fill_all(elem, InvocationMode::Injected, 0, &|ctx| {
            payload(ctx.bank, ctx.slot)
        })
        .unwrap();
    assert_eq!(fleet.stats().batch_puts, 0, "PerFrame must never batch");

    // Replay the identical sends on a second, identical testbed through the
    // plain sender path: one fresh `TwoChainsSender` per stream, walking the
    // stream's banks in the same bank-major order the lane fills them.
    let (fabric_b, b_tx, b_rx) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host_b = TwoChainsHost::new(&fabric_b, b_rx, config()).expect("host");
    host_b
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let cfg = host_b.config().clone();
    for stream in 0..SHARDS {
        let mut tx = TwoChainsSender::new(
            fabric_b.endpoint(b_tx, b_rx).unwrap(),
            benchmark_package().unwrap(),
        );
        tx.set_remote_got(elem, &host_b.export_got(elem).unwrap());
        for bank in (0..cfg.banks).filter(|b| b % SHARDS == stream) {
            for slot in 0..cfg.mailboxes_per_bank {
                let (args, usr) = payload(bank, slot);
                let msg = spec(elem)
                    .mode(InvocationMode::Injected)
                    .args(args)
                    .usr(usr);
                let target = host_b.mailbox_target(bank, slot).unwrap();
                tx.send_spec(SimTime::ZERO, &msg, &target).unwrap();
            }
        }
    }

    let receiver_a = fabric_a.host(two_chains_suite::fabric::HostId(1)).unwrap();
    let receiver_b = fabric_b.host(b_rx).unwrap();
    for bank in 0..cfg.banks {
        for slot in 0..cfg.mailboxes_per_bank {
            let ta = host_a.mailbox_target(bank, slot).unwrap();
            let tb = host_b.mailbox_target(bank, slot).unwrap();
            let wire_a = receiver_a
                .find_region(&ta.region)
                .unwrap()
                .read(ta.offset, ta.capacity)
                .unwrap();
            let wire_b = receiver_b
                .find_region(&tb.region)
                .unwrap()
                .read(tb.offset, tb.capacity)
                .unwrap();
            assert_eq!(
                wire_a, wire_b,
                "mailbox ({bank}, {slot}) diverged from the standalone wire format"
            );
        }
    }
}

/// The default adaptive containers are observationally equal to the per-frame
/// wire behaviour: same result multiset, same receiver execution counters,
/// same payload byte accounting — while actually batching (shape counters
/// nonzero on exactly one side).
#[test]
fn adaptive_containers_match_per_frame_results_and_counters() {
    let run = |cfg: RuntimeConfig| {
        let (_fabric, mut host, mut fleet) = build(cfg);
        let elem = host.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        fleet
            .fill_all(elem, InvocationMode::Injected, 0, &|ctx| {
                payload(ctx.bank, ctx.slot)
            })
            .unwrap();
        let (mut results, rejected) = drain_all(&mut host);
        assert_eq!(rejected, 0);
        results.sort_unstable();
        (results, host.stats(), fleet.stats())
    };

    let (res_pf, rx_pf, tx_pf) = run(config().with_per_frame_aggregation());
    let (res_ad, rx_ad, tx_ad) = run(config());

    // Same messages, same answers, same execution accounting.
    assert_eq!(res_pf, res_ad, "result multisets diverge");
    assert_eq!(rx_pf.messages_received, rx_ad.messages_received);
    assert_eq!(rx_pf.executions, rx_ad.executions);
    assert_eq!(rx_pf.injected_executions, rx_ad.injected_executions);
    assert_eq!(rx_pf.credits_returned, rx_ad.credits_returned);
    // `bytes_sent` counts inner-frame bytes only (the container envelope is
    // accounting-invisible), so the payload ledger matches exactly.
    assert_eq!(tx_pf.messages_sent, tx_ad.messages_sent);
    assert_eq!(tx_pf.bytes_sent, tx_ad.bytes_sent);
    // Only the wire shape differs: the default policy actually batched.
    assert_eq!(tx_pf.batch_puts, 0);
    assert_eq!(rx_pf.batches_received, 0);
    assert!(
        tx_ad.batch_puts > 0,
        "adaptive fill never built a container"
    );
    assert!(
        tx_ad.batched_frames > tx_ad.batch_puts,
        "containers must be multi-frame"
    );
    assert_eq!(rx_ad.batches_received, tx_ad.batch_puts);
    assert_eq!(rx_ad.batch_frames_received, tx_ad.batched_frames);
}
