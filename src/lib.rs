//! Workspace-level facade crate for the Two-Chains reproduction.
//!
//! This crate exists so that the repository root can host runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`) that exercise the
//! public APIs of every member crate together. It re-exports the member crates
//! under short names for convenience.

pub use twochains;
pub use twochains_bench as bench;
pub use twochains_fabric as fabric;
pub use twochains_jamvm as jamvm;
pub use twochains_linker as linker;
pub use twochains_memsim as memsim;
